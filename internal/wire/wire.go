// Package wire defines the binary client/server protocol of the network
// service layer: length-prefixed frames carrying a handshake, OLTP
// transaction operations, typed analytical queries with streamed result
// batches, and typed errors whose retryability survives the trip across
// the network.
//
// Frame layout:
//
//	4 bytes  big-endian payload length (includes the type byte)
//	1 byte   message type
//	n bytes  payload
//
// Payload scalars are varints (signed values) and uvarints (counts,
// lengths); strings are uvarint length + bytes; rows reuse the
// types.AppendRow encoding shared with the WAL and Raft log. Deadlines
// travel as absolute unix nanoseconds so the server can rebuild the
// client's context deadline without clock-free duration guesswork; zero
// means no deadline.
//
// The protocol is strictly request/response per connection: after sending
// a request the client stays silent until the full response (for queries:
// schema, batches, end-of-stream) has arrived. That silence is load-bearing
// — it lets the server treat any readable byte or EOF during query
// execution as "the client is gone" and cancel the scan mid-batch.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"htap/internal/types"
)

// Version is the protocol version exchanged in the handshake.
const Version = 1

// MaxFrame bounds a single frame's payload, a guard against corrupt
// length prefixes allocating gigabytes.
const MaxFrame = 64 << 20

// Message types. Client-to-server requests first, server-to-client
// responses second.
const (
	// MsgHello opens a connection: Hello{Version}.
	MsgHello byte = iota + 1
	// MsgBegin starts the session's transaction: Begin{Deadline}.
	MsgBegin
	// MsgGet reads one row in the open transaction: KeyReq{Table, Key}.
	MsgGet
	// MsgInsert inserts a row: RowReq{Table, Row}.
	MsgInsert
	// MsgUpdate updates a row: RowReq{Table, Row}.
	MsgUpdate
	// MsgDelete deletes by key: KeyReq{Table, Key}.
	MsgDelete
	// MsgCommit commits the open transaction (empty payload).
	MsgCommit
	// MsgAbort aborts the open transaction (empty payload).
	MsgAbort
	// MsgQuery runs CH query N server-side: Query{Deadline, N}. The
	// response is a batch stream.
	MsgQuery
	// MsgScan streams a table scan: Scan{Deadline, Table, Cols, Pred}.
	MsgScan
	// MsgSync forces a data-synchronization round (empty payload).
	MsgSync
	// MsgFreshness asks for the OLTP-vs-OLAP watermark gap.
	MsgFreshness

	// MsgServerHello answers MsgHello: ServerHello{Version, Arch, Meta}.
	MsgServerHello
	// MsgOK acknowledges a write, commit, abort, or sync (empty payload).
	MsgOK
	// MsgRow answers MsgGet: Batch with exactly one row.
	MsgRow
	// MsgSchema opens a batch stream: Schema{Cols}.
	MsgSchema
	// MsgBatch carries result rows: Batch{Rows}.
	MsgBatch
	// MsgEOS closes a batch stream: EOS{Rows}.
	MsgEOS
	// MsgFreshnessInfo answers MsgFreshness: Freshness{...}.
	MsgFreshnessInfo
	// MsgError reports a failure: Error{Code, Msg}. For requests it ends
	// the exchange; inside a batch stream it ends the stream.
	MsgError

	// Requests added after the first release are appended here so every
	// existing type keeps its number on the wire.

	// MsgPrepare votes the session's open transaction in a two-phase
	// commit: Prepare{Deadline}. MsgOK is a yes vote — every operation the
	// transaction forwarded has been applied and validated, and the
	// session holds its locks until MsgCommit or MsgAbort resolves it.
	MsgPrepare
	// MsgFragment streams a scatter–gather plan fragment: a table scan
	// with pushed-down predicate conjuncts the shard evaluates on its
	// encoded segments. The response is a batch stream, like MsgScan.
	// A fragment may additionally carry an aggregate spec (the response
	// becomes a MsgPartial stream) or a top-k spec (the response stays a
	// batch stream bounded to k rows).
	MsgFragment
	// MsgPartial carries serialized partial-aggregation groups produced
	// by a fragment with an aggregate spec: Partial{Groups}. Zero or more
	// MsgPartial frames are followed by MsgEOS, whose row count is the
	// total group count.
	MsgPartial
	// MsgRebalance asks a coordinator to move a warehouse range to
	// another shard: Rebalance{Deadline, Lo, Hi, Dest}. Answered by
	// MsgRebalanceInfo or MsgError.
	MsgRebalance
	// MsgRebalanceInfo answers MsgRebalance: RebalanceInfo{Moved,
	// Version} — rows moved and the new routing-table version.
	MsgRebalanceInfo
)

// Admission classes label requests for the server's per-class token
// buckets.
const (
	ClassOLTP = "oltp"
	ClassOLAP = "olap"
)

// Error codes.
const (
	CodeInternal   uint8 = 1 // non-retryable server failure
	CodeBadRequest uint8 = 2 // malformed or out-of-order frame
	CodeNotFound   uint8 = 3 // point read of an absent key
	CodeConflict   uint8 = 4 // transaction conflict; retry with backoff
	CodeOverloaded uint8 = 5 // admission control shed the request
	CodeShutdown   uint8 = 6 // server is draining
	CodeCanceled   uint8 = 7 // context cancelled or deadline exceeded
)

// Error is the protocol's typed error. It crosses the wire as an Error
// frame and reconstructs on the client with its code intact, so
// core.Exec's retry loop (which asks errors.As for Retryable) treats a
// remote conflict exactly like a local one.
//
// Reason optionally qualifies the code — overloaded sheds carry "rate" vs
// "memory" so clients can back off appropriately (a rate shed clears in
// milliseconds; memory pressure needs a longer pause). It rides the frame
// as a trailing string that old decoders never read and new decoders treat
// as absent when missing, so both directions stay compatible.
type Error struct {
	Code   uint8
	Msg    string
	Reason string
}

// Sentinel errors for errors.Is. ErrOverloaded is the admission-control
// shed signal the benchmark driver and tests match on.
var (
	ErrOverloaded = &Error{Code: CodeOverloaded, Msg: "server overloaded"}
	ErrNotFound   = &Error{Code: CodeNotFound, Msg: "key not found"}
	ErrShutdown   = &Error{Code: CodeShutdown, Msg: "server draining"}
)

func (e *Error) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("wire: %s (code %d, reason %s)", e.Msg, e.Code, e.Reason)
	}
	return fmt.Sprintf("wire: %s (code %d)", e.Msg, e.Code)
}

// Overloaded builds a shed error carrying a typed reason ("rate",
// "memory"). It matches ErrOverloaded under errors.Is.
func Overloaded(reason string) *Error {
	return &Error{Code: CodeOverloaded, Msg: "server overloaded", Reason: reason}
}

// Retryable reports whether the failure is transient: conflicts and
// admission sheds clear on retry; a draining server clears when a
// replacement starts accepting.
func (e *Error) Retryable() bool {
	switch e.Code {
	case CodeConflict, CodeOverloaded, CodeShutdown:
		return true
	}
	return false
}

// Is matches two wire errors by code, so errors.Is(err, wire.ErrOverloaded)
// holds for any shed regardless of message text.
func (e *Error) Is(target error) bool {
	var t *Error
	return errors.As(target, &t) && t.Code == e.Code
}

// --- frame I/O ---

// WriteFrame writes one frame. The header and payload go out in a single
// Write so a buffered writer flushes them together.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame too large: %d bytes", len(payload))
	}
	buf := make([]byte, 0, 5+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)+1))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, returning its type and payload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return hdr[4], payload, nil
}

// --- payload encoding ---

// A dec walks a payload. Methods record the first failure; callers check
// Err once at the end instead of after every field.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated %s", what)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("byte")
		return 0
	}
	b := d.b[0]
	d.b = d.b[1:]
	return b
}

func (d *dec) row() types.Row {
	if d.err != nil {
		return nil
	}
	r, n, err := types.DecodeRow(d.b)
	if err != nil {
		d.err = err
		return nil
	}
	d.b = d.b[n:]
	return r
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Hello is the client handshake.
type Hello struct {
	Version uint32
}

// Encode appends the payload encoding.
func (h Hello) Encode(dst []byte) []byte {
	return binary.AppendUvarint(dst, uint64(h.Version))
}

// DecodeHello parses a MsgHello payload.
func DecodeHello(b []byte) (Hello, error) {
	d := &dec{b: b}
	h := Hello{Version: uint32(d.uvarint())}
	return h, d.err
}

// ServerHello is the server handshake: the engine's architecture plus a
// small integer-valued metadata map. htapd advertises its dataset scale
// and the history-key watermark there, so a remote benchmark driver can
// rebuild its client-side directories without re-reading the tables.
type ServerHello struct {
	Version uint32
	Arch    uint8
	Meta    map[string]int64
}

// Encode appends the payload encoding. Map order is not canonicalized;
// decode order is irrelevant.
func (h ServerHello) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(h.Version))
	dst = append(dst, h.Arch)
	dst = binary.AppendUvarint(dst, uint64(len(h.Meta)))
	for k, v := range h.Meta {
		dst = appendString(dst, k)
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// DecodeServerHello parses a MsgServerHello payload.
func DecodeServerHello(b []byte) (ServerHello, error) {
	d := &dec{b: b}
	h := ServerHello{Version: uint32(d.uvarint()), Arch: d.byte()}
	n := d.uvarint()
	if d.err == nil && n > 0 {
		// Each entry costs at least two bytes (key length prefix plus a
		// varint value); a larger count is corrupt, and sizing the map from
		// it would let a hostile header allocate gigabytes.
		if n > uint64(len(d.b))/2 {
			return h, fmt.Errorf("wire: meta count %d exceeds payload", n)
		}
		h.Meta = make(map[string]int64, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			k := d.str()
			h.Meta[k] = d.varint()
		}
	}
	return h, d.err
}

// Begin opens a transaction with an optional absolute deadline.
//
// TraceID/SpanID ride after the deadline only when set, like
// Error.Reason: decoders predating trace propagation ignore trailing
// bytes, and old encoders simply omit them.
type Begin struct {
	Deadline int64  // unix nanoseconds; 0 = none
	TraceID  uint64 // originating trace; 0 = untraced
	SpanID   uint64 // caller's span, parent for the server-side span
}

// Encode appends the payload encoding.
func (m Begin) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Deadline)
	if m.TraceID != 0 {
		dst = binary.AppendUvarint(dst, m.TraceID)
		dst = binary.AppendUvarint(dst, m.SpanID)
	}
	return dst
}

// DecodeBegin parses a MsgBegin payload.
func DecodeBegin(b []byte) (Begin, error) {
	d := &dec{b: b}
	m := Begin{Deadline: d.varint()}
	if d.err == nil && len(d.b) > 0 {
		m.TraceID = d.uvarint()
		m.SpanID = d.uvarint()
		if m.TraceID == 0 {
			// A span without a trace is meaningless; canonicalize to the
			// untraced form the encoder would have produced.
			m.SpanID = 0
		}
	}
	return m, d.err
}

// KeyReq addresses one row by table and packed primary key (MsgGet,
// MsgDelete).
type KeyReq struct {
	Table string
	Key   int64
}

// Encode appends the payload encoding.
func (m KeyReq) Encode(dst []byte) []byte {
	dst = appendString(dst, m.Table)
	return binary.AppendVarint(dst, m.Key)
}

// DecodeKeyReq parses a MsgGet or MsgDelete payload.
func DecodeKeyReq(b []byte) (KeyReq, error) {
	d := &dec{b: b}
	m := KeyReq{Table: d.str(), Key: d.varint()}
	return m, d.err
}

// RowReq carries one row write (MsgInsert, MsgUpdate).
type RowReq struct {
	Table string
	Row   types.Row
}

// Encode appends the payload encoding.
func (m RowReq) Encode(dst []byte) []byte {
	dst = appendString(dst, m.Table)
	return types.AppendRow(dst, m.Row)
}

// DecodeRowReq parses a MsgInsert or MsgUpdate payload.
func DecodeRowReq(b []byte) (RowReq, error) {
	d := &dec{b: b}
	m := RowReq{Table: d.str(), Row: d.row()}
	return m, d.err
}

// queryFlagProfile asks the server to profile execution and return the
// rendered plan in the EOS trailer.
const queryFlagProfile = 1 << 0

// appendTraceCtx appends the optional [TraceID, SpanID, flags] trailer
// shared by Query and Scan, but only when there is something to say —
// frames to old servers stay byte-identical.
func appendTraceCtx(dst []byte, traceID, spanID uint64, profile bool) []byte {
	if traceID == 0 && !profile {
		return dst
	}
	dst = binary.AppendUvarint(dst, traceID)
	dst = binary.AppendUvarint(dst, spanID)
	var flags byte
	if profile {
		flags |= queryFlagProfile
	}
	return append(dst, flags)
}

// Query runs CH-benCHmark query N (1..22) server-side.
//
// The trace/profile trailer is optional and trailing (see Begin); old
// decoders never read it, old encoders never write it.
type Query struct {
	Deadline int64
	N        uint32
	TraceID  uint64
	SpanID   uint64
	Profile  bool // request an EOS profile trailer
}

// Encode appends the payload encoding.
func (m Query) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Deadline)
	dst = binary.AppendUvarint(dst, uint64(m.N))
	return appendTraceCtx(dst, m.TraceID, m.SpanID, m.Profile)
}

// DecodeQuery parses a MsgQuery payload.
func DecodeQuery(b []byte) (Query, error) {
	d := &dec{b: b}
	m := Query{Deadline: d.varint(), N: uint32(d.uvarint())}
	decodeTraceCtx(d, &m.TraceID, &m.SpanID, &m.Profile)
	return m, d.err
}

// decodeTraceCtx reads the optional trailing [TraceID, SpanID, flags]
// context, canonicalizing a meaningless trailer (no trace, no flags) to
// the form appendTraceCtx would have produced — the empty one.
func decodeTraceCtx(d *dec, traceID, spanID *uint64, profile *bool) {
	if d.err != nil || len(d.b) == 0 {
		return
	}
	*traceID = d.uvarint()
	*spanID = d.uvarint()
	*profile = d.byte()&queryFlagProfile != 0
	if *traceID == 0 && !*profile {
		*spanID = 0
	}
}

// Scan streams a table scan. Cols nil means every column. HasPred guards
// the advisory zone-map range, mirroring exec.ScanPred.
type Scan struct {
	Deadline int64
	Table    string
	Cols     []string
	HasPred  bool
	PredCol  string
	PredLo   int64
	PredHi   int64
	TraceID  uint64
	SpanID   uint64
	Profile  bool
}

// Encode appends the payload encoding.
func (m Scan) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Deadline)
	dst = appendString(dst, m.Table)
	dst = binary.AppendUvarint(dst, uint64(len(m.Cols)))
	for _, c := range m.Cols {
		dst = appendString(dst, c)
	}
	if !m.HasPred {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendString(dst, m.PredCol)
		dst = binary.AppendVarint(dst, m.PredLo)
		dst = binary.AppendVarint(dst, m.PredHi)
	}
	return appendTraceCtx(dst, m.TraceID, m.SpanID, m.Profile)
}

// DecodeScan parses a MsgScan payload.
func DecodeScan(b []byte) (Scan, error) {
	d := &dec{b: b}
	m := Scan{Deadline: d.varint(), Table: d.str()}
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Cols = append(m.Cols, d.str())
	}
	if d.byte() == 1 {
		m.HasPred = true
		m.PredCol = d.str()
		m.PredLo = d.varint()
		m.PredHi = d.varint()
	}
	decodeTraceCtx(d, &m.TraceID, &m.SpanID, &m.Profile)
	return m, d.err
}

// Prepare asks the session to vote on its open transaction (MsgPrepare):
// MsgOK means every forwarded operation applied and validated and the
// transaction's locks are held pending the coordinator's MsgCommit or
// MsgAbort; MsgError is a no vote. The trace trailer follows the Begin
// convention: optional, trailing, absent when untraced.
type Prepare struct {
	Deadline int64
	TraceID  uint64
	SpanID   uint64
}

// Encode appends the payload encoding.
func (m Prepare) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Deadline)
	if m.TraceID != 0 {
		dst = binary.AppendUvarint(dst, m.TraceID)
		dst = binary.AppendUvarint(dst, m.SpanID)
	}
	return dst
}

// DecodePrepare parses a MsgPrepare payload.
func DecodePrepare(b []byte) (Prepare, error) {
	d := &dec{b: b}
	m := Prepare{Deadline: d.varint()}
	if d.err == nil && len(d.b) > 0 {
		m.TraceID = d.uvarint()
		m.SpanID = d.uvarint()
		if m.TraceID == 0 {
			m.SpanID = 0
		}
	}
	return m, d.err
}

// Pushable predicate kinds carried by a Fragment, mirroring
// exec.PushedPred: a column⊗constant comparison, a string prefix, or an
// int IN-set.
const (
	FragPredCmp    uint8 = 1
	FragPredPrefix uint8 = 2
	FragPredInSet  uint8 = 3
)

// FragPred is one pushed conjunct of a fragment scan. The shard rebuilds
// the expression and runs it through its own pushdown rewrite, so the
// conjunct evaluates on encoded segment vectors with the coordinator's
// exact comparison semantics.
type FragPred struct {
	Kind   uint8
	Col    string
	Op     uint8       // FragPredCmp: exec.CmpOp numbering
	Datum  types.Datum // FragPredCmp comparand
	Prefix string      // FragPredPrefix
	Ints   []int64     // FragPredInSet, sorted ascending
}

// Fragment spec kinds: the trailing operator a fragment pushes past the
// filtered scan. Absent on old-release frames — the decoder treats an
// empty remainder as no spec, like the trace trailer.
const (
	fragSpecNone uint8 = 0
	fragSpecAgg  uint8 = 1
	fragSpecTopK uint8 = 2
)

// FragAggFn is one aggregate of a pushed-down partial aggregation.
// Kind uses exec.AggKind numbering; Col is empty for COUNT(*).
type FragAggFn struct {
	Kind uint8
	Col  string
}

// FragAgg asks the shard to aggregate the filtered scan and stream
// partial group states (MsgPartial frames) instead of raw rows.
type FragAgg struct {
	GroupBy []string
	Aggs    []FragAggFn
}

// FragSortKey is one key of a pushed-down top-k.
type FragSortKey struct {
	Col  string
	Desc bool
}

// FragTopK asks the shard to bound the filtered scan to the k smallest
// rows under Keys (total order — see exec's top-k comparator). The
// response stays a normal batch stream.
type FragTopK struct {
	K    int64
	Keys []FragSortKey
}

// Fragment is a scatter–gather subplan pushed to one shard (MsgFragment):
// a Scan plus the filter conjuncts the coordinator's pushdown rewrite
// fused into it, plus at most one of an aggregate or top-k spec. The
// response is a Schema/Batch/EOS stream, or a MsgPartial stream when an
// aggregate spec is present.
type Fragment struct {
	Deadline int64
	Table    string
	Cols     []string
	HasPred  bool
	PredCol  string
	PredLo   int64
	PredHi   int64
	Preds    []FragPred
	Agg      *FragAgg
	TopK     *FragTopK
	TraceID  uint64
	SpanID   uint64
	Profile  bool
}

// Encode appends the payload encoding.
func (m Fragment) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Deadline)
	dst = appendString(dst, m.Table)
	dst = binary.AppendUvarint(dst, uint64(len(m.Cols)))
	for _, c := range m.Cols {
		dst = appendString(dst, c)
	}
	if !m.HasPred {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendString(dst, m.PredCol)
		dst = binary.AppendVarint(dst, m.PredLo)
		dst = binary.AppendVarint(dst, m.PredHi)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Preds)))
	for _, p := range m.Preds {
		dst = append(dst, p.Kind)
		dst = appendString(dst, p.Col)
		switch p.Kind {
		case FragPredCmp:
			dst = append(dst, p.Op)
			dst = types.AppendRow(dst, types.Row{p.Datum})
		case FragPredPrefix:
			dst = appendString(dst, p.Prefix)
		case FragPredInSet:
			dst = binary.AppendUvarint(dst, uint64(len(p.Ints)))
			for _, v := range p.Ints {
				dst = binary.AppendVarint(dst, v)
			}
		}
	}
	switch {
	case m.Agg != nil:
		dst = append(dst, fragSpecAgg)
		dst = binary.AppendUvarint(dst, uint64(len(m.Agg.GroupBy)))
		for _, g := range m.Agg.GroupBy {
			dst = appendString(dst, g)
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.Agg.Aggs)))
		for _, a := range m.Agg.Aggs {
			dst = append(dst, a.Kind)
			dst = appendString(dst, a.Col)
		}
	case m.TopK != nil:
		dst = append(dst, fragSpecTopK)
		dst = binary.AppendUvarint(dst, uint64(m.TopK.K))
		dst = binary.AppendUvarint(dst, uint64(len(m.TopK.Keys)))
		for _, k := range m.TopK.Keys {
			dst = appendString(dst, k.Col)
			if k.Desc {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	default:
		dst = append(dst, fragSpecNone)
	}
	return appendTraceCtx(dst, m.TraceID, m.SpanID, m.Profile)
}

// DecodeFragment parses a MsgFragment payload. Claimed counts never
// preallocate: slices grow only while payload bytes remain, so a hostile
// header cannot make the decoder over-allocate.
func DecodeFragment(b []byte) (Fragment, error) {
	d := &dec{b: b}
	m := Fragment{Deadline: d.varint(), Table: d.str()}
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Cols = append(m.Cols, d.str())
	}
	if d.byte() == 1 {
		m.HasPred = true
		m.PredCol = d.str()
		m.PredLo = d.varint()
		m.PredHi = d.varint()
	}
	n = d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		p := FragPred{Kind: d.byte(), Col: d.str()}
		switch p.Kind {
		case FragPredCmp:
			p.Op = d.byte()
			if r := d.row(); d.err == nil {
				if len(r) != 1 {
					d.fail("fragment comparand")
				} else {
					p.Datum = r[0]
				}
			}
		case FragPredPrefix:
			p.Prefix = d.str()
		case FragPredInSet:
			k := d.uvarint()
			for j := uint64(0); j < k && d.err == nil; j++ {
				p.Ints = append(p.Ints, d.varint())
			}
		default:
			if d.err == nil {
				d.err = fmt.Errorf("wire: unknown fragment predicate kind %d", p.Kind)
			}
		}
		m.Preds = append(m.Preds, p)
	}
	// Spec trailer: absent entirely on old-release frames.
	if d.err == nil && len(d.b) > 0 {
		switch kind := d.byte(); kind {
		case fragSpecNone:
		case fragSpecAgg:
			a := &FragAgg{}
			k := d.uvarint()
			for i := uint64(0); i < k && d.err == nil; i++ {
				a.GroupBy = append(a.GroupBy, d.str())
			}
			k = d.uvarint()
			for i := uint64(0); i < k && d.err == nil; i++ {
				a.Aggs = append(a.Aggs, FragAggFn{Kind: d.byte(), Col: d.str()})
			}
			m.Agg = a
		case fragSpecTopK:
			t := &FragTopK{K: int64(d.uvarint())}
			k := d.uvarint()
			for i := uint64(0); i < k && d.err == nil; i++ {
				key := FragSortKey{Col: d.str()}
				switch d.byte() {
				case 0:
				case 1:
					key.Desc = true
				default:
					d.fail("fragment top-k desc flag")
				}
				t.Keys = append(t.Keys, key)
			}
			m.TopK = t
		default:
			if d.err == nil {
				d.err = fmt.Errorf("wire: unknown fragment spec kind %d", kind)
			}
		}
	}
	decodeTraceCtx(d, &m.TraceID, &m.SpanID, &m.Profile)
	return m, d.err
}

// Partial carries one batch of serialized partial-aggregation groups
// (MsgPartial). Each group is an exec.EncodePartial row: the group key
// followed by five datums per aggregate — the exact-sum accumulator
// bytes in a String datum, the integer sum, the count, and the min/max
// datums. The row codec's own hostile-header guards bound every claimed
// length; group arity and accumulator contents are validated again by
// exec.DecodePartial before any state is combined.
type Partial struct {
	Groups []types.Row
}

// Encode appends the payload encoding.
func (m Partial) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Groups)))
	for _, g := range m.Groups {
		dst = types.AppendRow(dst, g)
	}
	return dst
}

// DecodePartial parses a MsgPartial payload. Claimed counts never
// preallocate: groups grow only while payload bytes remain.
func DecodePartial(b []byte) (Partial, error) {
	d := &dec{b: b}
	n := d.uvarint()
	m := Partial{}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Groups = append(m.Groups, d.row())
	}
	return m, d.err
}

// Rebalance asks a coordinator to move warehouses [Lo, Hi] to shard
// Dest (MsgRebalance).
type Rebalance struct {
	Deadline int64
	Lo       int64
	Hi       int64
	Dest     int64
}

// Encode appends the payload encoding.
func (m Rebalance) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Deadline)
	dst = binary.AppendVarint(dst, m.Lo)
	dst = binary.AppendVarint(dst, m.Hi)
	return binary.AppendVarint(dst, m.Dest)
}

// DecodeRebalance parses a MsgRebalance payload.
func DecodeRebalance(b []byte) (Rebalance, error) {
	d := &dec{b: b}
	m := Rebalance{Deadline: d.varint(), Lo: d.varint(), Hi: d.varint(), Dest: d.varint()}
	return m, d.err
}

// RebalanceInfo answers MsgRebalance: rows moved and the routing-table
// version now in effect.
type RebalanceInfo struct {
	Moved   int64
	Version int64
}

// Encode appends the payload encoding.
func (m RebalanceInfo) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Moved)
	return binary.AppendVarint(dst, m.Version)
}

// DecodeRebalanceInfo parses a MsgRebalanceInfo payload.
func DecodeRebalanceInfo(b []byte) (RebalanceInfo, error) {
	d := &dec{b: b}
	m := RebalanceInfo{Moved: d.varint(), Version: d.varint()}
	return m, d.err
}

// Schema opens a batch stream by naming and typing its columns.
type Schema struct {
	Cols []types.Column
}

// Encode appends the payload encoding.
func (m Schema) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Cols)))
	for _, c := range m.Cols {
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Type))
	}
	return dst
}

// DecodeSchema parses a MsgSchema payload.
func DecodeSchema(b []byte) (Schema, error) {
	d := &dec{b: b}
	n := d.uvarint()
	m := Schema{}
	for i := uint64(0); i < n && d.err == nil; i++ {
		name := d.str()
		m.Cols = append(m.Cols, types.Column{Name: name, Type: types.ColType(d.byte())})
	}
	return m, d.err
}

// Batch carries result rows. A stream is MsgSchema, zero or more
// MsgBatch frames, then MsgEOS (or MsgError, which also ends it).
type Batch struct {
	Rows []types.Row
}

// Encode appends the payload encoding.
func (m Batch) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Rows)))
	for _, r := range m.Rows {
		dst = types.AppendRow(dst, r)
	}
	return dst
}

// DecodeBatch parses a MsgBatch or MsgRow payload.
func DecodeBatch(b []byte) (Batch, error) {
	d := &dec{b: b}
	n := d.uvarint()
	m := Batch{}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Rows = append(m.Rows, d.row())
	}
	return m, d.err
}

// EOS closes a batch stream with the total row count, a cheap integrity
// check against dropped batches.
//
// When the request carried the profile flag, the server appends a
// trailer: a presence byte, the server-side execution / admission-wait /
// spill-I/O nanoseconds, and the rendered profile tree. Old clients stop
// after Rows; old servers never append it.
type EOS struct {
	Rows       int64
	HasProfile bool
	ExecNS     int64
	AdmitNS    int64
	SpillNS    int64
	Profile    string // exec.QueryProfile.Render output
}

// Encode appends the payload encoding.
func (m EOS) Encode(dst []byte) []byte {
	dst = binary.AppendVarint(dst, m.Rows)
	if m.HasProfile {
		dst = append(dst, 1)
		dst = binary.AppendVarint(dst, m.ExecNS)
		dst = binary.AppendVarint(dst, m.AdmitNS)
		dst = binary.AppendVarint(dst, m.SpillNS)
		dst = appendString(dst, m.Profile)
	}
	return dst
}

// DecodeEOS parses a MsgEOS payload.
func DecodeEOS(b []byte) (EOS, error) {
	d := &dec{b: b}
	m := EOS{Rows: d.varint()}
	if d.err == nil && len(d.b) > 0 && d.byte() == 1 {
		m.HasProfile = true
		m.ExecNS = d.varint()
		m.AdmitNS = d.varint()
		m.SpillNS = d.varint()
		m.Profile = d.str()
	}
	return m, d.err
}

// Freshness mirrors freshness.Snapshot across the wire.
type Freshness struct {
	CommitTS  uint64
	AppliedTS uint64
	LagTS     uint64
	LagNS     int64
}

// Encode appends the payload encoding.
func (m Freshness) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, m.CommitTS)
	dst = binary.AppendUvarint(dst, m.AppliedTS)
	dst = binary.AppendUvarint(dst, m.LagTS)
	return binary.AppendVarint(dst, m.LagNS)
}

// DecodeFreshness parses a MsgFreshnessInfo payload.
func DecodeFreshness(b []byte) (Freshness, error) {
	d := &dec{b: b}
	m := Freshness{CommitTS: d.uvarint(), AppliedTS: d.uvarint(), LagTS: d.uvarint(), LagNS: d.varint()}
	return m, d.err
}

// EncodeError builds a MsgError payload. The reason rides after the
// message; decoders predating the field ignore trailing bytes.
func EncodeError(dst []byte, e *Error) []byte {
	dst = append(dst, e.Code)
	dst = appendString(dst, e.Msg)
	if e.Reason != "" {
		dst = appendString(dst, e.Reason)
	}
	return dst
}

// DecodeError parses a MsgError payload. A garbled payload still yields a
// usable (internal) error rather than failing the decode; a payload from
// an older peer simply lacks the trailing reason.
func DecodeError(b []byte) *Error {
	d := &dec{b: b}
	e := &Error{Code: d.byte(), Msg: d.str()}
	if d.err != nil {
		return &Error{Code: CodeInternal, Msg: "garbled error frame"}
	}
	if len(d.b) > 0 {
		if r := d.str(); d.err == nil {
			e.Reason = r
		}
	}
	return e
}
