package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"htap/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello payload")
	if err := WriteFrame(&buf, MsgBatch, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgBatch || !bytes.Equal(got, payload) {
		t.Fatalf("got type %d payload %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgCommit, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgCommit || len(got) != 0 {
		t.Fatalf("got type %d payload %q", typ, got)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgOK, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, _, err := ReadFrame(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("want error for truncated frame")
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF for empty stream, got %v", err)
	}
}

func TestFrameBadLength(t *testing.T) {
	// Length 0 is invalid (the type byte is part of the count).
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0, 0})); err == nil {
		t.Fatal("want error for zero length")
	}
	// A corrupt giant length must fail before allocating.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 1})); err == nil {
		t.Fatal("want error for oversized length")
	}
}

func row(vals ...interface{}) types.Row {
	r := make(types.Row, 0, len(vals))
	for _, v := range vals {
		switch x := v.(type) {
		case int:
			r = append(r, types.NewInt(int64(x)))
		case float64:
			r = append(r, types.NewFloat(x))
		case string:
			r = append(r, types.NewString(x))
		}
	}
	return r
}

func TestMessageRoundTrips(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		got, err := DecodeHello(Hello{Version: 7}.Encode(nil))
		if err != nil || got.Version != 7 {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("server-hello", func(t *testing.T) {
		in := ServerHello{Version: 1, Arch: 3, Meta: map[string]int64{"warehouses": 4, "hkey": -9}}
		got, err := DecodeServerHello(in.Encode(nil))
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("begin", func(t *testing.T) {
		got, err := DecodeBegin(Begin{Deadline: 123456789}.Encode(nil))
		if err != nil || got.Deadline != 123456789 {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("key-req", func(t *testing.T) {
		in := KeyReq{Table: "orders", Key: -42}
		got, err := DecodeKeyReq(in.Encode(nil))
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("row-req", func(t *testing.T) {
		in := RowReq{Table: "customer", Row: row(1, 2.5, "BARBAR")}
		got, err := DecodeRowReq(in.Encode(nil))
		if err != nil || got.Table != in.Table || !reflect.DeepEqual(got.Row, in.Row) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("query", func(t *testing.T) {
		in := Query{Deadline: 99, N: 21}
		got, err := DecodeQuery(in.Encode(nil))
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("scan", func(t *testing.T) {
		in := Scan{
			Deadline: 5, Table: "order_line", Cols: []string{"ol_i_id", "ol_quantity"},
			HasPred: true, PredCol: "ol_i_id", PredLo: -10, PredHi: 500,
		}
		got, err := DecodeScan(in.Encode(nil))
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("scan-no-pred", func(t *testing.T) {
		in := Scan{Table: "stock"}
		got, err := DecodeScan(in.Encode(nil))
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("schema", func(t *testing.T) {
		in := Schema{Cols: []types.Column{{Name: "a", Type: types.Int}, {Name: "b", Type: types.String}}}
		got, err := DecodeSchema(in.Encode(nil))
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("batch", func(t *testing.T) {
		in := Batch{Rows: []types.Row{row(1, "x"), row(2, "y"), row(3, 1.25)}}
		got, err := DecodeBatch(in.Encode(nil))
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("eos", func(t *testing.T) {
		got, err := DecodeEOS(EOS{Rows: 1 << 40}.Encode(nil))
		if err != nil || got.Rows != 1<<40 {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("freshness", func(t *testing.T) {
		in := Freshness{CommitTS: 100, AppliedTS: 90, LagTS: 10, LagNS: 5_000_000}
		got, err := DecodeFreshness(in.Encode(nil))
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
}

func TestDecodeTruncatedPayloads(t *testing.T) {
	full := Scan{Table: "t", Cols: []string{"a"}, HasPred: true, PredCol: "a", PredLo: 1, PredHi: 2}.Encode(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeScan(full[:cut]); err == nil && cut < len(full)-1 {
			// Some prefixes decode cleanly (e.g. before the pred flag the
			// flag byte is required, so only the full payload may pass).
			t.Logf("prefix %d decoded without error", cut)
		}
	}
	if _, err := DecodeRowReq([]byte{}); err == nil {
		t.Fatal("want error decoding empty row request")
	}
}

func TestErrorRoundTripAndRetryability(t *testing.T) {
	for _, tc := range []struct {
		code      uint8
		retryable bool
	}{
		{CodeInternal, false},
		{CodeBadRequest, false},
		{CodeNotFound, false},
		{CodeConflict, true},
		{CodeOverloaded, true},
		{CodeShutdown, true},
		{CodeCanceled, false},
	} {
		in := &Error{Code: tc.code, Msg: "m"}
		got := DecodeError(EncodeError(nil, in))
		if got.Code != in.Code || got.Msg != in.Msg {
			t.Fatalf("code %d: got %+v", tc.code, got)
		}
		if got.Retryable() != tc.retryable {
			t.Fatalf("code %d: retryable = %v, want %v", tc.code, got.Retryable(), tc.retryable)
		}
	}
}

func TestErrorIsMatchesByCode(t *testing.T) {
	err := DecodeError(EncodeError(nil, &Error{Code: CodeOverloaded, Msg: "olap bucket empty"}))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("decoded shed error must match ErrOverloaded")
	}
	if errors.Is(err, ErrShutdown) {
		t.Fatal("shed error must not match ErrShutdown")
	}
	// And through wrapping.
	wrapped := &Error{Code: CodeOverloaded, Msg: "other text"}
	if !errors.Is(wrapped, ErrOverloaded) {
		t.Fatal("wrapped shed must match sentinel")
	}
}

func TestErrorRetryableInterfaceCrossesLayers(t *testing.T) {
	// core.Exec discovers retryability via errors.As on an anonymous
	// interface; make sure the wire error satisfies it.
	var r interface{ Retryable() bool }
	err := error(&Error{Code: CodeConflict, Msg: "write-write"})
	if !errors.As(err, &r) || !r.Retryable() {
		t.Fatal("wire error must expose Retryable through errors.As")
	}
}

func TestErrorReasonRoundTrip(t *testing.T) {
	in := Overloaded("memory")
	got := DecodeError(EncodeError(nil, in))
	if got.Code != CodeOverloaded || got.Reason != "memory" {
		t.Fatalf("round trip = %+v", got)
	}
	if !errors.Is(got, ErrOverloaded) {
		t.Fatal("reasoned shed must still match ErrOverloaded")
	}
	// Backward compatibility both ways: an old-format payload (no trailing
	// reason) decodes with an empty reason, and a reasonless error encodes
	// to the exact old byte layout.
	old := DecodeError(EncodeError(nil, &Error{Code: CodeOverloaded, Msg: "server overloaded"}))
	if old.Reason != "" {
		t.Fatalf("legacy payload grew a reason: %q", old.Reason)
	}
	legacy := append([]byte{CodeOverloaded}, 17)
	legacy = append(legacy, "server overloaded"...)
	if got := DecodeError(legacy); got.Msg != "server overloaded" || got.Reason != "" {
		t.Fatalf("hand-built legacy frame = %+v", got)
	}
}
