package wire

import (
	"bytes"
	"reflect"
	"testing"

	"htap/internal/types"
)

// rt checks the decode/encode/decode roundtrip for one message: a value
// that decoded successfully must re-encode to bytes that decode back to
// the identical value. Floats live as raw bits inside types.Datum, so
// reflect.DeepEqual is NaN-safe here.
func rt[M any](t *testing.T, m M, derr error, enc func(M) []byte, dec func([]byte) (M, error)) {
	t.Helper()
	if derr != nil {
		return // rejecting garbage is fine; only accepted values must roundtrip
	}
	b := enc(m)
	m2, err := dec(b)
	if err != nil {
		t.Fatalf("re-decode of accepted %T failed: %v\nvalue: %+v", m, err, m)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("roundtrip mismatch for %T:\nfirst:  %+v\nsecond: %+v", m, m, m2)
	}
}

// FuzzFrameDecode feeds arbitrary bytes through the full receive path a
// server or client runs on untrusted input: frame parsing, then the typed
// payload decoder for whatever message type the frame claims. Nothing may
// panic or over-allocate, and every accepted message must survive an
// encode/decode roundtrip bit-for-bit.
func FuzzFrameDecode(f *testing.F) {
	seed := func(typ byte, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	row := types.Row{types.NewInt(42), types.NewFloat(3.25), types.NewString("morsel"), types.Null}
	seed(MsgHello, Hello{Version: Version}.Encode(nil))
	seed(MsgServerHello, ServerHello{Version: Version, Arch: 2, Meta: map[string]int64{"scale": 4, "hist": -9}}.Encode(nil))
	seed(MsgBegin, Begin{Deadline: 1700000000000000000}.Encode(nil))
	seed(MsgGet, KeyReq{Table: "orders", Key: -7}.Encode(nil))
	seed(MsgInsert, RowReq{Table: "order_line", Row: row}.Encode(nil))
	seed(MsgQuery, Query{Deadline: 1, N: 21}.Encode(nil))
	seed(MsgScan, Scan{Table: "item", Cols: []string{"i_id", "i_price"}, HasPred: true, PredCol: "i_id", PredLo: -3, PredHi: 900}.Encode(nil))
	seed(MsgSchema, Schema{Cols: []types.Column{{Name: "k", Type: types.Int}, {Name: "v", Type: types.String}}}.Encode(nil))
	seed(MsgBatch, Batch{Rows: []types.Row{row, {types.NewString("")}}}.Encode(nil))
	seed(MsgEOS, EOS{Rows: 1 << 40}.Encode(nil))
	seed(MsgFreshnessInfo, Freshness{CommitTS: 10, AppliedTS: 8, LagTS: 2, LagNS: 5000}.Encode(nil))
	seed(MsgError, EncodeError(nil, &Error{Code: CodeConflict, Msg: "write-write conflict"}))
	seed(MsgCommit, nil)
	seed(MsgPrepare, Prepare{Deadline: 1700000000000000000, TraceID: 7, SpanID: 9}.Encode(nil))
	seed(MsgFragment, Fragment{
		Deadline: 2, Table: "order_line", Cols: []string{"ol_w_id", "ol_amount"},
		HasPred: true, PredCol: "ol_key", PredLo: 16, PredHi: 1 << 40,
		Preds: []FragPred{
			{Kind: FragPredCmp, Col: "ol_amount", Op: 5, Datum: types.NewFloat(0.25)},
			{Kind: FragPredPrefix, Col: "ol_dist_info", Prefix: "ab"},
			{Kind: FragPredInSet, Col: "ol_number", Ints: []int64{-3, 0, 7}},
		},
	}.Encode(nil))
	seed(MsgFragment, Fragment{
		Table: "order_line", Cols: []string{"ol_number", "ol_amount"},
		Agg: &FragAgg{GroupBy: []string{"ol_number"}, Aggs: []FragAggFn{
			{Kind: 1, Col: "ol_amount"}, {Kind: 2}, {Kind: 3, Col: "ol_amount"},
		}},
	}.Encode(nil))
	seed(MsgFragment, Fragment{
		Table: "customer", Cols: []string{"c_balance", "c_id"},
		TopK: &FragTopK{K: 10, Keys: []FragSortKey{{Col: "c_balance", Desc: true}, {Col: "c_id"}}},
	}.Encode(nil))
	// A partial-state frame shaped like exec.EncodePartial output: group
	// key, then per aggregate the exact-sum bytes, integer sum, count,
	// min, max.
	seed(MsgPartial, Partial{Groups: []types.Row{{
		types.NewInt(7),
		types.NewString("\x00\x08\x0a\x00\x01\x02"), types.NewInt(0), types.NewInt(3),
		types.NewFloat(0.25), types.NewFloat(9.5),
	}}}.Encode(nil))
	// Hostile partial headers: a group count of 2^40 over an empty tail,
	// and a single group whose row claims 2^32 columns.
	seed(MsgPartial, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f})
	seed(MsgPartial, []byte{0x01, 0xff, 0xff, 0xff, 0xff, 0x0f})
	seed(MsgRebalance, Rebalance{Deadline: 1700000000000000000, Lo: 2, Hi: 5, Dest: 1}.Encode(nil))
	seed(MsgRebalanceInfo, RebalanceInfo{Moved: 1 << 33, Version: 4}.Encode(nil))
	// Hostile fragment headers: a predicate list claiming 2^28 entries on
	// an empty tail, and an IN-set claiming 2^30 values.
	seed(MsgFragment, append(Fragment{Table: "t"}.Encode(nil)[:4], 0x00, 0xff, 0xff, 0xff, 0x7f))
	seed(MsgFragment, append(Fragment{Table: "t"}.Encode(nil)[:4], 0x00, 0x01, 0x03, 0x01, 'x', 0xff, 0xff, 0xff, 0xff, 0x03))
	// Hostile headers the decoders must reject cheaply: a row claiming 2^32
	// columns, and a string claiming a length that overflows int.
	seed(MsgBatch, []byte{0x01, 0xff, 0xff, 0xff, 0xff, 0x0f})
	seed(MsgInsert, append([]byte{0x01, 'x', 0x01, 0x03}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Frame layer roundtrip: what we read must re-frame and re-read.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame roundtrip: (%d, %x, %v) != (%d, %x)", typ2, payload2, err, typ, payload)
		}

		switch typ {
		case MsgHello:
			m, err := DecodeHello(payload)
			rt(t, m, err, func(m Hello) []byte { return m.Encode(nil) }, DecodeHello)
		case MsgServerHello:
			m, err := DecodeServerHello(payload)
			rt(t, m, err, func(m ServerHello) []byte { return m.Encode(nil) }, DecodeServerHello)
		case MsgBegin:
			m, err := DecodeBegin(payload)
			rt(t, m, err, func(m Begin) []byte { return m.Encode(nil) }, DecodeBegin)
		case MsgGet, MsgDelete:
			m, err := DecodeKeyReq(payload)
			rt(t, m, err, func(m KeyReq) []byte { return m.Encode(nil) }, DecodeKeyReq)
		case MsgInsert, MsgUpdate:
			m, err := DecodeRowReq(payload)
			rt(t, m, err, func(m RowReq) []byte { return m.Encode(nil) }, DecodeRowReq)
		case MsgQuery:
			m, err := DecodeQuery(payload)
			rt(t, m, err, func(m Query) []byte { return m.Encode(nil) }, DecodeQuery)
		case MsgScan:
			m, err := DecodeScan(payload)
			rt(t, m, err, func(m Scan) []byte { return m.Encode(nil) }, DecodeScan)
		case MsgPrepare:
			m, err := DecodePrepare(payload)
			rt(t, m, err, func(m Prepare) []byte { return m.Encode(nil) }, DecodePrepare)
		case MsgFragment:
			m, err := DecodeFragment(payload)
			rt(t, m, err, func(m Fragment) []byte { return m.Encode(nil) }, DecodeFragment)
		case MsgSchema:
			m, err := DecodeSchema(payload)
			rt(t, m, err, func(m Schema) []byte { return m.Encode(nil) }, DecodeSchema)
		case MsgRow, MsgBatch:
			m, err := DecodeBatch(payload)
			rt(t, m, err, func(m Batch) []byte { return m.Encode(nil) }, DecodeBatch)
		case MsgPartial:
			m, err := DecodePartial(payload)
			rt(t, m, err, func(m Partial) []byte { return m.Encode(nil) }, DecodePartial)
		case MsgRebalance:
			m, err := DecodeRebalance(payload)
			rt(t, m, err, func(m Rebalance) []byte { return m.Encode(nil) }, DecodeRebalance)
		case MsgRebalanceInfo:
			m, err := DecodeRebalanceInfo(payload)
			rt(t, m, err, func(m RebalanceInfo) []byte { return m.Encode(nil) }, DecodeRebalanceInfo)
		case MsgEOS:
			m, err := DecodeEOS(payload)
			rt(t, m, err, func(m EOS) []byte { return m.Encode(nil) }, DecodeEOS)
		case MsgFreshnessInfo:
			m, err := DecodeFreshness(payload)
			rt(t, m, err, func(m Freshness) []byte { return m.Encode(nil) }, DecodeFreshness)
		case MsgError:
			// DecodeError never fails; garbled payloads become a usable
			// internal error. Well-formed ones must roundtrip.
			e := DecodeError(payload)
			if e == nil {
				t.Fatal("DecodeError returned nil")
			}
			e2 := DecodeError(EncodeError(nil, e))
			if *e != *e2 {
				t.Fatalf("error roundtrip: %+v != %+v", e, e2)
			}
		}
	})
}
