package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// The trace/profile trailers must be invisible to old peers in both
// directions: a frame without trace context is byte-identical to the
// pre-trailer encoding (so old servers parse it unchanged), and a frame
// from an old peer — exactly the pre-trailer bytes — decodes to zero
// trailer fields.
func TestTraceTrailerBackwardCompat(t *testing.T) {
	// Old-style encodings, built by hand the way the pre-trailer code did.
	oldBegin := binary.AppendVarint(nil, 77)
	oldQuery := binary.AppendUvarint(binary.AppendVarint(nil, 77), 9)
	oldScan := binary.AppendVarint(nil, 77)
	oldScan = appendString(oldScan, "orders")
	oldScan = binary.AppendUvarint(oldScan, 0) // no cols
	oldScan = append(oldScan, 0)               // no pred
	oldEOS := binary.AppendVarint(nil, 42)

	// Direction 1: untraced new encoders emit exactly the old bytes.
	if got := (Begin{Deadline: 77}).Encode(nil); !bytes.Equal(got, oldBegin) {
		t.Fatalf("untraced Begin not byte-identical to old encoding: %x vs %x", got, oldBegin)
	}
	if got := (Query{Deadline: 77, N: 9}).Encode(nil); !bytes.Equal(got, oldQuery) {
		t.Fatalf("untraced Query not byte-identical: %x vs %x", got, oldQuery)
	}
	if got := (Scan{Deadline: 77, Table: "orders"}).Encode(nil); !bytes.Equal(got, oldScan) {
		t.Fatalf("untraced Scan not byte-identical: %x vs %x", got, oldScan)
	}
	if got := (EOS{Rows: 42}).Encode(nil); !bytes.Equal(got, oldEOS) {
		t.Fatalf("profile-less EOS not byte-identical: %x vs %x", got, oldEOS)
	}

	// Direction 2: old-peer bytes decode with zero trailer fields.
	if m, err := DecodeBegin(oldBegin); err != nil || m.TraceID != 0 || m.SpanID != 0 {
		t.Fatalf("old Begin decoded %+v, %v", m, err)
	}
	if m, err := DecodeQuery(oldQuery); err != nil || m.TraceID != 0 || m.Profile {
		t.Fatalf("old Query decoded %+v, %v", m, err)
	}
	if m, err := DecodeScan(oldScan); err != nil || m.TraceID != 0 || m.Profile {
		t.Fatalf("old Scan decoded %+v, %v", m, err)
	}
	if m, err := DecodeEOS(oldEOS); err != nil || m.HasProfile {
		t.Fatalf("old EOS decoded %+v, %v", m, err)
	}
}

// Traced and profiled frames round-trip losslessly.
func TestTraceTrailerRoundTrip(t *testing.T) {
	b := Begin{Deadline: -5, TraceID: 0xDEAD, SpanID: 0xBEEF}
	if got, err := DecodeBegin(b.Encode(nil)); err != nil || got != b {
		t.Fatalf("Begin round trip: %+v, %v", got, err)
	}
	q := Query{Deadline: 1, N: 22, TraceID: 7, SpanID: 8, Profile: true}
	if got, err := DecodeQuery(q.Encode(nil)); err != nil || got != q {
		t.Fatalf("Query round trip: %+v, %v", got, err)
	}
	// Profile without a trace still rides (trace IDs zero).
	q = Query{N: 3, Profile: true}
	if got, err := DecodeQuery(q.Encode(nil)); err != nil || !got.Profile || got.TraceID != 0 {
		t.Fatalf("profile-only Query round trip: %+v, %v", got, err)
	}
	s := Scan{
		Deadline: 9, Table: "stock", Cols: []string{"s_i_id", "s_quantity"},
		HasPred: true, PredCol: "s_quantity", PredLo: 1, PredHi: 10,
		TraceID: 11, SpanID: 12, Profile: true,
	}
	got, err := DecodeScan(s.Encode(nil))
	if err != nil || got.TraceID != 11 || got.SpanID != 12 || !got.Profile ||
		got.Table != "stock" || len(got.Cols) != 2 || !got.HasPred {
		t.Fatalf("Scan round trip: %+v, %v", got, err)
	}
	e := EOS{Rows: 10, HasProfile: true, ExecNS: 123, AdmitNS: 45, SpillNS: 6,
		Profile: "profile: arch=A\nplan 1:\nscan(stock) [rows=10]"}
	if got, err := DecodeEOS(e.Encode(nil)); err != nil || got != e {
		t.Fatalf("EOS round trip: %+v, %v", got, err)
	}
}
