package server

import (
	"context"
	"strings"
	"testing"

	"htap/internal/exec"
	"htap/internal/obs"
)

// A profiled remote query must produce one linked trace spanning both
// sides of the wire: the client's root and attempt spans, and a server
// span whose Trace is the client's trace and whose Parent is the attempt
// span that carried the request. Client and server here share one
// process (and so one obs.Trace ring), which is exactly what makes the
// linkage checkable without scraping two /spans endpoints.
func TestRemoteQueryTraceLinkage(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})

	root := obs.Trace.Start("client.query").AttrInt("q", 1)
	prof := exec.NewQueryProfile()
	ctx := exec.WithProfile(obs.ContextWithSpan(context.Background(), root), prof)
	rows, err := r.RunCH(ctx, 1)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Q1 returned no rows")
	}

	var clientAttempt, serverSpan *obs.SpanData
	for _, s := range obs.Trace.Spans() {
		if s.Trace != root.TraceID() {
			continue
		}
		s := s
		switch s.Name {
		case "client.attempt":
			clientAttempt = &s
		case "server.query":
			serverSpan = &s
		}
	}
	if clientAttempt == nil || serverSpan == nil {
		t.Fatalf("trace %d missing spans: attempt=%v server=%v",
			root.TraceID(), clientAttempt != nil, serverSpan != nil)
	}
	if clientAttempt.Parent != root.SpanID() {
		t.Fatalf("attempt parent %d != root span %d", clientAttempt.Parent, root.SpanID())
	}
	if serverSpan.Parent != clientAttempt.ID {
		t.Fatalf("server span parent %d != client attempt %d", serverSpan.Parent, clientAttempt.ID)
	}
	admitSeen := false
	for _, a := range serverSpan.Attrs {
		if a.Key == "admit_wait_ns" && a.IsInt {
			admitSeen = true
		}
	}
	if !admitSeen {
		t.Fatalf("server span lacks admit_wait_ns attr: %+v", serverSpan.Attrs)
	}

	// The EOS trailer carried the server-side profile back into the
	// client's QueryProfile.
	if prof.ExecNS() <= 0 {
		t.Fatal("remote profile has no execution time")
	}
	rendered := prof.Render()
	if !strings.Contains(rendered, "[rows=") {
		t.Fatalf("remote profile lacks operator annotations:\n%s", rendered)
	}
}

// An unprofiled, untraced remote query — an "old client" as far as the
// frames are concerned — must round-trip unchanged: no profile trailer
// comes back, and the server span starts a trace of its own.
func TestRemoteQueryWithoutTraceStillWorks(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})
	rows, err := r.RunCH(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Q1 returned no rows")
	}
}
