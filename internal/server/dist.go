package server

import (
	"context"
	"fmt"
	"time"

	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/obs"
	"htap/internal/types"
	"htap/internal/wire"
)

// This file is the server half of distributed execution: the PREPARE vote
// for cross-shard transactions and the FRAGMENT scan for scatter–gather
// queries. Both reuse the session's existing admission, watchdog, and
// trace plumbing — a shard server is just a server.

// txPreparer is the optional vote surface of an engine transaction.
// Engines that validate locks and snapshots as each write arrives are
// implicitly prepared; ones with deferred validation expose it here.
type txPreparer interface{ Prepare() error }

// handlePrepare votes on the session's open transaction — phase one of a
// coordinator-driven cross-shard commit. After MsgOK, the coordinator
// holds this shard's promise that MsgCommit cannot fail validation.
func (c *session) handlePrepare(payload []byte) error {
	if c.tx == nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: "no open transaction"})
	}
	m, err := wire.DecodePrepare(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	if m.TraceID != 0 {
		sp := obs.Trace.StartRemote("server.prepare", m.TraceID, m.SpanID)
		defer sp.End()
	}
	if p, ok := c.tx.(txPreparer); ok {
		if err := p.Prepare(); err != nil {
			return c.sendErr(err)
		}
	}
	// Engines without a Prepare surface acquired every lock and passed
	// every snapshot check when the writes were forwarded; reaching this
	// point with the transaction still open IS the yes vote.
	return c.send(wire.MsgOK, nil)
}

// handleFragment runs a pushed-down scan fragment: project the requested
// columns, re-apply the coordinator's pushed predicates through the local
// Filter rewrite — so they fuse into encoded column scans and prune zone
// maps exactly as a local query's would — and stream the survivors.
func (c *session) handleFragment(payload []byte) error {
	m, err := wire.DecodeFragment(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	start := time.Now()
	ctx, cancel := c.reqCtx(m.Deadline)
	defer cancel()
	sp := obs.Trace.StartRemote("server.fragment", m.TraceID, m.SpanID).Attr("table", m.Table)
	defer sp.End()
	admitStart := time.Now()
	ok, cerr := c.admit(ctx, wire.ClassOLAP)
	admitNS := time.Since(admitStart).Nanoseconds()
	sp.AttrInt("admit_wait_ns", admitNS)
	if !ok {
		return cerr
	}
	sch := c.srv.cfg.Engine.Schema(m.Table)
	if sch == nil {
		return c.sendErr(fmt.Errorf("%w: %s", core.ErrNoTable, m.Table))
	}
	// Validate names before they reach exec, whose binder treats unknown
	// columns as programmer error (panic); wire input is not trusted.
	for _, col := range m.Cols {
		if sch.ColIndex(col) < 0 {
			return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("no column %q in %s", col, m.Table)})
		}
	}
	var filters []exec.Expr
	for _, fp := range m.Preds {
		pp, perr := pushedPredOf(fp)
		if perr != nil {
			return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: perr.Error()})
		}
		found := false
		for _, col := range m.Cols {
			if col == pp.Col {
				found = true
				break
			}
		}
		if !found {
			return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("predicate column %q not in projection", pp.Col)})
		}
		filters = append(filters, pp.Expr())
	}
	var pred *exec.ScanPred
	if m.HasPred {
		pred = &exec.ScanPred{Col: m.PredCol, Lo: m.PredLo, Hi: m.PredHi}
	}
	qctx, stop := c.watch(ctx)
	qctx = obs.ContextWithSpan(qctx, sp)
	var prof *exec.QueryProfile
	if m.Profile {
		prof = exec.NewQueryProfile()
		prof.SetAdmitNS(admitNS)
		qctx = exec.WithProfile(qctx, prof)
	}
	plan := c.srv.cfg.Engine.Query(qctx, m.Table, m.Cols, pred)
	for _, f := range filters {
		plan = plan.Filter(f)
	}
	if m.Agg != nil {
		aggs, aerr := fragAggsOf(m.Agg, m.Cols)
		if aerr != nil {
			stop()
			c.srv.m.reqNS[wire.ClassOLAP].Since(start)
			return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: aerr.Error()})
		}
		// Partial groups are computed eagerly so any execution error
		// becomes a clean MsgError before the first stream frame.
		groups, err := plan.PartialAgg(m.Agg.GroupBy, aggs)
		broken := stop()
		c.srv.m.reqNS[wire.ClassOLAP].Since(start)
		if broken {
			return fmt.Errorf("client broke protocol or disconnected")
		}
		if err != nil {
			return c.sendErr(err)
		}
		return c.streamPartials(groups, aggs, profileEOS(prof, admitNS))
	}
	if m.TopK != nil {
		if m.TopK.K < 1 || m.TopK.K > maxFragTopK {
			stop()
			c.srv.m.reqNS[wire.ClassOLAP].Since(start)
			return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("top-k bound %d outside [1, %d]", m.TopK.K, maxFragTopK)})
		}
		keys := make([]exec.SortKey, len(m.TopK.Keys))
		for i, k := range m.TopK.Keys {
			if !inProjection(k.Col, m.Cols) {
				stop()
				c.srv.m.reqNS[wire.ClassOLAP].Since(start)
				return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("top-k column %q not in projection", k.Col)})
			}
			keys[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
		}
		plan = plan.TopK(int(m.TopK.K), keys...)
	}
	outSch := plan.Schema()
	rows, err := plan.RunCtx(qctx)
	broken := stop()
	c.srv.m.reqNS[wire.ClassOLAP].Since(start)
	if broken {
		return fmt.Errorf("client broke protocol or disconnected")
	}
	if err != nil {
		return c.sendErr(err)
	}
	return c.stream(outSch, rows, profileEOS(prof, admitNS))
}

// maxFragTopK bounds the per-fragment top-k heap a frame may request;
// wire input is not trusted to size server allocations.
const maxFragTopK = 1 << 20

func inProjection(col string, cols []string) bool {
	for _, c := range cols {
		if c == col {
			return true
		}
	}
	return false
}

// fragAggsOf validates a wire aggregate spec against the fragment's
// projection and rebuilds the exec aggregates. Only bare projected
// columns travel — the coordinator declined anything richer.
func fragAggsOf(spec *wire.FragAgg, cols []string) ([]exec.Agg, error) {
	for _, g := range spec.GroupBy {
		if !inProjection(g, cols) {
			return nil, fmt.Errorf("group-by column %q not in projection", g)
		}
	}
	aggs := make([]exec.Agg, len(spec.Aggs))
	for i, a := range spec.Aggs {
		kind := exec.AggKind(a.Kind)
		if kind < exec.Sum || kind > exec.Max {
			return nil, fmt.Errorf("bad aggregate kind %d", a.Kind)
		}
		aggs[i] = exec.Agg{Kind: kind, Name: fmt.Sprintf("a%d", i)}
		if kind != exec.Count {
			if !inProjection(a.Col, cols) {
				return nil, fmt.Errorf("aggregate column %q not in projection", a.Col)
			}
			aggs[i].Expr = exec.ColName(a.Col)
		}
	}
	return aggs, nil
}

// streamPartials is the pushed-aggregation stream: MsgPartial frames of
// encoded group states, then MsgEOS whose Rows trailer counts groups.
func (c *session) streamPartials(groups []*exec.PartialGroup, aggs []exec.Agg, eos wire.EOS) error {
	eos.Rows = int64(len(groups))
	for len(groups) > 0 {
		n := streamBatch
		if n > len(groups) {
			n = len(groups)
		}
		p := wire.Partial{Groups: make([]types.Row, n)}
		for i, g := range groups[:n] {
			p.Groups[i] = exec.EncodePartial(g, aggs)
		}
		if err := c.send(wire.MsgPartial, p.Encode(nil)); err != nil {
			return err
		}
		groups = groups[n:]
	}
	return c.send(wire.MsgEOS, eos.Encode(nil))
}

// rangeMover is the optional rebalance surface of the served engine —
// implemented by the distributed coordinator, absent on single-shard
// engines.
type rangeMover interface {
	MoveRange(ctx context.Context, lo, hi, dest int) (int64, int64, error)
}

// handleRebalance moves a warehouse range between shards — the admin
// surface of online rebalancing. Only a coordinator engine can serve it.
func (c *session) handleRebalance(payload []byte) error {
	m, err := wire.DecodeRebalance(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	mover, ok := c.srv.cfg.Engine.(rangeMover)
	if !ok {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: "engine is not a distributed coordinator"})
	}
	ctx, cancel := c.reqCtx(m.Deadline)
	defer cancel()
	moved, version, err := mover.MoveRange(ctx, int(m.Lo), int(m.Hi), int(m.Dest))
	if err != nil {
		return c.sendErr(err)
	}
	return c.send(wire.MsgRebalanceInfo, wire.RebalanceInfo{Moved: moved, Version: version}.Encode(nil))
}

// pushedPredOf converts a wire predicate back to its exec form, rejecting
// malformed kinds and operators instead of letting them bind.
func pushedPredOf(fp wire.FragPred) (exec.PushedPred, error) {
	switch fp.Kind {
	case wire.FragPredCmp:
		if fp.Op < uint8(exec.EQ) || fp.Op > uint8(exec.GE) {
			return exec.PushedPred{}, fmt.Errorf("bad comparison op %d", fp.Op)
		}
		return exec.PushedPred{Kind: exec.PushCmp, Col: fp.Col, Op: exec.CmpOp(fp.Op), Datum: fp.Datum}, nil
	case wire.FragPredPrefix:
		return exec.PushedPred{Kind: exec.PushPrefix, Col: fp.Col, Prefix: fp.Prefix}, nil
	case wire.FragPredInSet:
		return exec.PushedPred{Kind: exec.PushInSet, Col: fp.Col, Ints: fp.Ints}, nil
	default:
		return exec.PushedPred{}, fmt.Errorf("bad predicate kind %d", fp.Kind)
	}
}
