package server

import (
	"context"
	"sync/atomic"
	"time"

	"htap/internal/wire"
)

// Limiter is a GCRA rate limiter with a bounded wait queue, one per
// workload class. GCRA tracks a single theoretical-arrival-time (TAT)
// under CAS, so admission is lock-free on the fast path: a request whose
// arrival is at or ahead of TAT minus the burst allowance passes
// immediately; one that would have to wait longer than MaxWait is shed
// with wire.ErrOverloaded *before* queueing, which keeps the wait queue
// from building the unbounded backlog that turns overload into collapse
// (the paper's isolation story, applied to the service layer: an OLAP
// burst sheds instead of queueing in front of OLTP).
type Limiter struct {
	tat      atomic.Int64 // theoretical arrival time, unix nanos
	interval int64        // nanos between admissions at the sustained rate
	burst    int64        // immediate-admission allowance, in requests
	maxWait  int64        // nanos a request may queue before shedding
	waiting  atomic.Int64 // current queue depth, for the gauge
}

// NewLimiter builds a limiter admitting ratePerSec requests per second
// sustained, with the given burst, shedding requests that would wait
// longer than maxWait. ratePerSec <= 0 disables limiting.
func NewLimiter(ratePerSec float64, burst int, maxWait time.Duration) *Limiter {
	if ratePerSec <= 0 {
		return &Limiter{}
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		interval: int64(float64(time.Second) / ratePerSec),
		burst:    int64(burst),
		maxWait:  int64(maxWait),
	}
}

// Waiting reports the number of requests currently queued.
func (l *Limiter) Waiting() int64 { return l.waiting.Load() }

// Admit blocks until the request may proceed, returning how long it
// waited. It returns wire.ErrOverloaded immediately when the queue is
// full (measured in wait time, GCRA's natural queue bound) and the
// context error if ctx ends while queued.
func (l *Limiter) Admit(ctx context.Context) (time.Duration, error) {
	if l.interval == 0 {
		return 0, nil
	}
	for {
		now := time.Now().UnixNano()
		old := l.tat.Load()
		tat := old
		if tat < now {
			tat = now
		}
		newTat := tat + l.interval
		delay := newTat - l.interval*l.burst - now
		if delay > l.maxWait {
			return 0, wire.ErrOverloaded
		}
		if !l.tat.CompareAndSwap(old, newTat) {
			continue
		}
		if delay <= 0 {
			return 0, nil
		}
		l.waiting.Add(1)
		t := time.NewTimer(time.Duration(delay))
		select {
		case <-t.C:
			l.waiting.Add(-1)
			return time.Duration(delay), nil
		case <-ctx.Done():
			t.Stop()
			l.waiting.Add(-1)
			// Give the reserved slot back so an abandoned wait does not
			// consume capacity.
			l.tat.Add(-l.interval)
			return time.Duration(time.Now().UnixNano() - now), ctx.Err()
		}
	}
}
