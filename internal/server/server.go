// Package server is the network service layer: a TCP listener that
// exposes any core.Engine over the wire protocol, with per-connection
// session state, per-class admission control, and a graceful drain path.
//
// Each connection is one session owning at most one open transaction.
// Requests are admitted through separate OLTP and OLAP GCRA buckets so an
// analytical burst sheds (wire.ErrOverloaded) instead of queueing ahead
// of point transactions — the service-layer half of the paper's
// workload-isolation story. Query execution is cancellable three ways:
// the client's propagated deadline, client disconnect (detected by a
// read watchdog while the scan runs), and server drain.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/obs"
	"htap/internal/types"
	"htap/internal/wire"
)

// Config parameterizes a server.
type Config struct {
	// Engine is the storage architecture being served.
	Engine core.Engine
	// Meta is advertised to every client in the handshake (dataset scale,
	// history-key watermark). May be nil.
	Meta map[string]int64

	// OLTPRate and OLAPRate are sustained admissions per second for the
	// two classes; <= 0 disables limiting for that class.
	OLTPRate float64
	OLAPRate float64
	// OLTPBurst and OLAPBurst are the immediate-admission allowances
	// (default 32 and 4).
	OLTPBurst int
	OLAPBurst int
	// MaxWait bounds queueing before a request is shed (default 100ms).
	MaxWait time.Duration

	// MemGov, when set, gates OLAP admission on execution-memory pressure:
	// new analytical requests shed with a typed "memory" reason once
	// MemGov.Pressure() reaches MemShedPressure (default 0.85). OLTP is
	// never memory-shed — point transactions are not the memory spenders,
	// and keeping them flowing is the whole point of bounding OLAP.
	MemGov *exec.Governor
	// MemShedPressure is the Used/Limit fraction above which OLAP sheds
	// (default 0.85; set < 0 to disable).
	MemShedPressure float64

	// Reg receives the htap_server_* series; nil uses obs.Default.
	Reg *obs.Registry
}

// Server serves the wire protocol on one listener.
type Server struct {
	cfg    Config
	ln     net.Listener
	hello  []byte // pre-encoded ServerHello payload
	oltp   *Limiter
	olap   *Limiter
	m      *metrics
	ctx    context.Context // closes when Shutdown force-cancels
	cancel context.CancelFunc

	draining atomic.Bool
	wg       sync.WaitGroup // one count per live connection

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

type metrics struct {
	requests map[string]*obs.Counter
	admitNS  map[string]*obs.Histogram
	reqNS    map[string]*obs.Histogram
	conns    *obs.Gauge
	handles  []*obs.FuncHandle
	reg      *obs.Registry

	// sheds is keyed class+reason ("rate", "memory", "canceled") and
	// populated lazily, so dashboards can tell a rate shed from a
	// memory-pressure shed.
	shedMu sync.Mutex
	sheds  map[string]*obs.Counter
}

func newMetrics(reg *obs.Registry, oltp, olap *Limiter) *metrics {
	m := &metrics{
		requests: map[string]*obs.Counter{},
		sheds:    map[string]*obs.Counter{},
		admitNS:  map[string]*obs.Histogram{},
		reqNS:    map[string]*obs.Histogram{},
		reg:      reg,
	}
	for class, l := range map[string]*Limiter{wire.ClassOLTP: oltp, wire.ClassOLAP: olap} {
		lbl := obs.L("class", class)
		m.requests[class] = reg.Counter("htap_server_requests_total", lbl)
		m.admitNS[class] = reg.Histogram("htap_server_admission_wait_ns", lbl)
		m.reqNS[class] = reg.Histogram("htap_server_request_ns", lbl)
		l := l
		m.handles = append(m.handles, reg.RegisterFunc(
			"htap_server_queue_depth", lbl, obs.KindGauge,
			func() float64 { return float64(l.Waiting()) }))
	}
	m.conns = reg.Gauge("htap_server_conns", nil)
	return m
}

// shed counts one shed of class for reason.
func (m *metrics) shed(class, reason string) {
	key := class + "|" + reason
	m.shedMu.Lock()
	ctr := m.sheds[key]
	if ctr == nil {
		ctr = m.reg.Counter("htap_server_shed_total", obs.L("class", class, "reason", reason))
		m.sheds[key] = ctr
	}
	m.shedMu.Unlock()
	ctr.Inc()
}

// Serve starts a server on addr ("127.0.0.1:0" picks a free port).
func Serve(addr string, cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	if cfg.OLTPBurst == 0 {
		cfg.OLTPBurst = 32
	}
	if cfg.OLAPBurst == 0 {
		cfg.OLAPBurst = 4
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 100 * time.Millisecond
	}
	if cfg.MemShedPressure == 0 {
		cfg.MemShedPressure = 0.85
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		oltp:   NewLimiter(cfg.OLTPRate, cfg.OLTPBurst, cfg.MaxWait),
		olap:   NewLimiter(cfg.OLAPRate, cfg.OLAPBurst, cfg.MaxWait),
		ctx:    ctx,
		cancel: cancel,
		conns:  map[net.Conn]struct{}{},
	}
	s.m = newMetrics(cfg.Reg, s.oltp, s.olap)
	s.hello = wire.ServerHello{
		Version: wire.Version,
		Arch:    uint8(cfg.Engine.Arch()),
		Meta:    cfg.Meta,
	}.Encode(nil)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// helloPayload returns the ServerHello to send a connecting client. The
// handshake is pre-encoded at startup, but the history-key watermark must
// be live: each remote driver process bumps its allocator from the
// handshake, so advertising the load-time value would hand every
// successive driver the same key range. When the advertised meta carries
// an hkey and history inserts have since raised the allocator, re-encode
// with the current watermark.
func (s *Server) helloPayload() []byte {
	base, ok := s.cfg.Meta["hkey"]
	if !ok {
		return s.hello
	}
	live := ch.HistoryKeyWatermark()
	if live <= base {
		return s.hello
	}
	meta := make(map[string]int64, len(s.cfg.Meta))
	for k, v := range s.cfg.Meta {
		meta[k] = v
	}
	meta["hkey"] = live
	return wire.ServerHello{
		Version: wire.Version,
		Arch:    uint8(s.cfg.Engine.Arch()),
		Meta:    meta,
	}.Encode(nil)
}

// Shutdown drains the server: it stops accepting, lets in-flight requests
// finish (sessions see wire.ErrShutdown on their next request), and
// returns when every connection has closed. If ctx expires first, open
// connections are severed and running queries cancelled.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	_ = s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // cancel running queries and transactions
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.cancel()
	for _, h := range s.m.handles {
		s.m.reg.Unregister(h)
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain started
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.m.conns.SetInt(int64(len(s.conns)))
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	sess := &session{srv: s, nc: nc}
	defer func() {
		sess.cleanup()
		s.mu.Lock()
		delete(s.conns, nc)
		n := int64(len(s.conns))
		s.mu.Unlock()
		_ = nc.Close()
		s.m.conns.SetInt(n)
		s.wg.Done()
	}()
	sess.run()
}

// session is the per-connection state: the handshake and at most one open
// transaction.
type session struct {
	srv      *Server
	nc       net.Conn
	tx       core.Tx
	txCancel context.CancelFunc
}

func (c *session) cleanup() {
	if c.tx != nil {
		c.tx.Abort()
		c.endTx()
	}
}

// endTx releases the transaction and its context. The context must live
// exactly as long as the transaction: it is created at Begin and spans
// the follow-up operation requests, so it cannot be request-scoped.
func (c *session) endTx() {
	c.tx = nil
	if c.txCancel != nil {
		c.txCancel()
		c.txCancel = nil
	}
}

func (c *session) send(typ byte, payload []byte) error {
	return wire.WriteFrame(c.nc, typ, payload)
}

func (c *session) sendErr(err error) error {
	return c.send(wire.MsgError, wire.EncodeError(nil, toWireError(err)))
}

// toWireError maps engine errors onto the protocol's typed errors so
// retryability crosses the network.
func toWireError(err error) *wire.Error {
	var we *wire.Error
	if errors.As(err, &we) {
		return we
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &wire.Error{Code: wire.CodeCanceled, Msg: err.Error()}
	case errors.Is(err, core.ErrNotFound):
		return &wire.Error{Code: wire.CodeNotFound, Msg: err.Error()}
	}
	var r interface{ Retryable() bool }
	if errors.As(err, &r) && r.Retryable() {
		return &wire.Error{Code: wire.CodeConflict, Msg: err.Error()}
	}
	if core.IsRetryable(err) {
		return &wire.Error{Code: wire.CodeConflict, Msg: err.Error()}
	}
	return &wire.Error{Code: wire.CodeInternal, Msg: err.Error()}
}

func (c *session) run() {
	// Handshake first: anything else is a protocol error.
	typ, payload, err := wire.ReadFrame(c.nc)
	if err != nil || typ != wire.MsgHello {
		return
	}
	h, err := wire.DecodeHello(payload)
	if err != nil || h.Version != wire.Version {
		_ = c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: "version mismatch"})
		return
	}
	if err := c.send(wire.MsgServerHello, c.srv.helloPayload()); err != nil {
		return
	}
	for {
		typ, payload, err := wire.ReadFrame(c.nc)
		if err != nil {
			return // disconnect (or drain severed us)
		}
		if err := c.dispatch(typ, payload); err != nil {
			return
		}
		// Drain: finish the request that was in flight, then hang up.
		// Clients see the close as a retryable broken connection; new
		// requests on other sessions get ErrShutdown below.
		if c.srv.draining.Load() && c.tx == nil {
			return
		}
	}
}

// dispatch handles one request frame. A returned error closes the
// connection; request-level failures are reported as Error frames and
// return nil.
func (c *session) dispatch(typ byte, payload []byte) error {
	if c.srv.draining.Load() && c.tx == nil {
		return c.sendErr(wire.ErrShutdown)
	}
	switch typ {
	case wire.MsgBegin:
		return c.handleBegin(payload)
	case wire.MsgGet, wire.MsgDelete:
		return c.handleKeyOp(typ, payload)
	case wire.MsgInsert, wire.MsgUpdate:
		return c.handleRowOp(typ, payload)
	case wire.MsgPrepare:
		return c.handlePrepare(payload)
	case wire.MsgCommit:
		return c.handleCommit()
	case wire.MsgFragment:
		return c.handleFragment(payload)
	case wire.MsgRebalance:
		return c.handleRebalance(payload)
	case wire.MsgAbort:
		c.cleanup()
		return c.send(wire.MsgOK, nil)
	case wire.MsgQuery:
		return c.handleQuery(payload)
	case wire.MsgScan:
		return c.handleScan(payload)
	case wire.MsgSync:
		c.srv.cfg.Engine.Sync()
		return c.send(wire.MsgOK, nil)
	case wire.MsgFreshness:
		f := c.srv.cfg.Engine.Freshness()
		return c.send(wire.MsgFreshnessInfo, wire.Freshness{
			CommitTS: f.CommitTS, AppliedTS: f.AppliedTS,
			LagTS: f.LagTS, LagNS: int64(f.LagTime),
		}.Encode(nil))
	default:
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected frame type %d", typ)})
	}
}

// admit runs class admission, recording wait and shed metrics. A shed or
// cancelled wait is reported to the client as an Error frame carrying a
// typed reason ("rate", "memory", "canceled") so client backoff can react
// appropriately; ok tells the caller whether to proceed.
func (c *session) admit(ctx context.Context, class string) (ok bool, closeConn error) {
	s := c.srv
	if class == wire.ClassOLAP && s.cfg.MemGov != nil && s.cfg.MemShedPressure >= 0 {
		if s.cfg.MemGov.Pressure() >= s.cfg.MemShedPressure {
			s.m.shed(class, "memory")
			return false, c.sendErr(wire.Overloaded("memory"))
		}
	}
	l := s.oltp
	if class == wire.ClassOLAP {
		l = s.olap
	}
	wait, err := l.Admit(ctx)
	s.m.admitNS[class].ObserveDuration(wait)
	if err != nil {
		reason := "rate"
		if ctx.Err() != nil {
			reason = "canceled"
		}
		s.m.shed(class, reason)
		if errors.Is(err, wire.ErrOverloaded) {
			return false, c.sendErr(wire.Overloaded(reason))
		}
		return false, c.sendErr(err)
	}
	s.m.requests[class].Inc()
	return true, nil
}

func (c *session) handleBegin(payload []byte) error {
	if c.tx != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: "transaction already open"})
	}
	m, err := wire.DecodeBegin(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	start := time.Now()
	ctx, cancel := c.reqCtx(m.Deadline)
	if m.TraceID != 0 {
		sp := obs.Trace.StartRemote("server.begin", m.TraceID, m.SpanID)
		defer sp.End()
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	ok, cerr := c.admit(ctx, wire.ClassOLTP)
	if !ok {
		cancel()
		return cerr
	}
	c.tx = c.srv.cfg.Engine.Begin(ctx)
	c.txCancel = cancel
	c.srv.m.reqNS[wire.ClassOLTP].Since(start)
	return c.send(wire.MsgOK, nil)
}

// reqCtx derives the request context from the server root (so drain
// force-cancel reaches running work) and the client's absolute deadline.
func (c *session) reqCtx(deadline int64) (context.Context, context.CancelFunc) {
	if deadline == 0 {
		return context.WithCancel(c.srv.ctx)
	}
	return context.WithDeadline(c.srv.ctx, time.Unix(0, deadline))
}

func (c *session) handleKeyOp(typ byte, payload []byte) error {
	if c.tx == nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: "no open transaction"})
	}
	m, err := wire.DecodeKeyReq(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	if typ == wire.MsgDelete {
		if err := c.tx.Delete(m.Table, m.Key); err != nil {
			return c.sendErr(err)
		}
		return c.send(wire.MsgOK, nil)
	}
	row, err := c.tx.Get(m.Table, m.Key)
	if err != nil {
		return c.sendErr(err)
	}
	return c.send(wire.MsgRow, wire.Batch{Rows: []types.Row{row}}.Encode(nil))
}

func (c *session) handleRowOp(typ byte, payload []byte) error {
	if c.tx == nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: "no open transaction"})
	}
	m, err := wire.DecodeRowReq(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	op := c.tx.Insert
	if typ == wire.MsgUpdate {
		op = c.tx.Update
	}
	if err := op(m.Table, m.Row); err != nil {
		return c.sendErr(err)
	}
	// Track the history-key high-water mark as inserts land so later
	// handshakes advertise a watermark above every key any driver has
	// used (the key is column 0 of the history row).
	if typ == wire.MsgInsert && m.Table == ch.THistory && len(m.Row) > 0 {
		ch.BumpHistoryKey(m.Row[0].Int())
	}
	return c.send(wire.MsgOK, nil)
}

func (c *session) handleCommit() error {
	if c.tx == nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: "no open transaction"})
	}
	err := c.tx.Commit()
	c.endTx()
	if err != nil {
		return c.sendErr(err)
	}
	return c.send(wire.MsgOK, nil)
}

func (c *session) handleQuery(payload []byte) error {
	m, err := wire.DecodeQuery(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	start := time.Now()
	ctx, cancel := c.reqCtx(m.Deadline)
	defer cancel()
	// Join the client's trace (StartRemote degrades to a fresh root for
	// old clients that sent no context), so /spans on this process links
	// back to the span that issued the request over the wire.
	sp := obs.Trace.StartRemote("server.query", m.TraceID, m.SpanID).AttrInt("q", int64(m.N))
	defer sp.End()
	admitStart := time.Now()
	ok, cerr := c.admit(ctx, wire.ClassOLAP)
	admitNS := time.Since(admitStart).Nanoseconds()
	sp.AttrInt("admit_wait_ns", admitNS)
	if !ok {
		return cerr
	}
	qctx, stop := c.watch(ctx)
	qctx = obs.ContextWithSpan(qctx, sp)
	var prof *exec.QueryProfile
	if m.Profile {
		prof = exec.NewQueryProfile()
		prof.SetAdmitNS(admitNS)
		qctx = exec.WithProfile(qctx, prof)
	}
	rows, err := ch.RunQuery(qctx, c.srv.cfg.Engine, int(m.N))
	broken := stop()
	c.srv.m.reqNS[wire.ClassOLAP].Since(start)
	if broken {
		return errors.New("client broke protocol or disconnected")
	}
	if err != nil {
		return c.sendErr(err)
	}
	// CH query results carry no schema; synthesize column names.
	sch := make([]types.Column, 0)
	if len(rows) > 0 {
		for i, d := range rows[0] {
			sch = append(sch, types.Column{Name: fmt.Sprintf("c%d", i), Type: d.Kind})
		}
	}
	return c.stream(sch, rows, profileEOS(prof, admitNS))
}

// profileEOS builds the EOS profile trailer for a profiled request; a nil
// prof (old client, or profiling not requested) yields the bare frame old
// clients expect byte-for-byte.
func profileEOS(prof *exec.QueryProfile, admitNS int64) wire.EOS {
	if prof == nil {
		return wire.EOS{}
	}
	return wire.EOS{
		HasProfile: true,
		ExecNS:     prof.ExecNS(),
		AdmitNS:    admitNS,
		SpillNS:    prof.SpillNS(),
		Profile:    prof.Render(),
	}
}

func (c *session) handleScan(payload []byte) error {
	m, err := wire.DecodeScan(payload)
	if err != nil {
		return c.sendErr(&wire.Error{Code: wire.CodeBadRequest, Msg: err.Error()})
	}
	start := time.Now()
	ctx, cancel := c.reqCtx(m.Deadline)
	defer cancel()
	sp := obs.Trace.StartRemote("server.scan", m.TraceID, m.SpanID).Attr("table", m.Table)
	defer sp.End()
	admitStart := time.Now()
	ok, cerr := c.admit(ctx, wire.ClassOLAP)
	admitNS := time.Since(admitStart).Nanoseconds()
	sp.AttrInt("admit_wait_ns", admitNS)
	if !ok {
		return cerr
	}
	var pred *exec.ScanPred
	if m.HasPred {
		pred = &exec.ScanPred{Col: m.PredCol, Lo: m.PredLo, Hi: m.PredHi}
	}
	if c.srv.cfg.Engine.Schema(m.Table) == nil {
		return c.sendErr(fmt.Errorf("%w: %s", core.ErrNoTable, m.Table))
	}
	qctx, stop := c.watch(ctx)
	qctx = obs.ContextWithSpan(qctx, sp)
	var prof *exec.QueryProfile
	if m.Profile {
		prof = exec.NewQueryProfile()
		prof.SetAdmitNS(admitNS)
		qctx = exec.WithProfile(qctx, prof)
	}
	plan := c.srv.cfg.Engine.Query(qctx, m.Table, m.Cols, pred)
	sch := plan.Schema()
	rows, err := plan.RunCtx(qctx)
	broken := stop()
	c.srv.m.reqNS[wire.ClassOLAP].Since(start)
	if broken {
		return errors.New("client broke protocol or disconnected")
	}
	if err != nil {
		return c.sendErr(err)
	}
	return c.stream(sch, rows, profileEOS(prof, admitNS))
}

// streamBatch is the row count per MsgBatch frame.
const streamBatch = 256

func (c *session) stream(sch []types.Column, rows []types.Row, eos wire.EOS) error {
	eos.Rows = int64(len(rows))
	if err := c.send(wire.MsgSchema, wire.Schema{Cols: sch}.Encode(nil)); err != nil {
		return err
	}
	for len(rows) > 0 {
		n := streamBatch
		if n > len(rows) {
			n = len(rows)
		}
		if err := c.send(wire.MsgBatch, wire.Batch{Rows: rows[:n]}.Encode(nil)); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return c.send(wire.MsgEOS, eos.Encode(nil))
}

// watch cancels the returned context if the client's half of the
// connection produces anything — a byte (protocol violation: requests
// may not overlap) or EOF/reset (disconnect) — while a query runs. The
// protocol's request/response discipline means a healthy client is
// silent here, so a readable event is always "stop scanning".
//
// stop ends the watch, unblocking its Read with a past read deadline,
// and reports whether the connection is broken (the handler must close
// rather than reuse it).
func (c *session) watch(ctx context.Context) (qctx context.Context, stop func() bool) {
	qctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	exited := make(chan struct{})
	var broken atomic.Bool
	go func() {
		defer close(exited)
		var b [1]byte
		_, err := c.nc.Read(b[:])
		select {
		case <-done:
			// stop() unblocked us with the read deadline; a timeout here
			// is the expected clean exit.
			var ne net.Error
			if !(errors.As(err, &ne) && ne.Timeout()) {
				broken.Store(true)
			}
			return
		default:
		}
		// Any read completion while the query runs — data or error —
		// means the client is gone or misbehaving.
		broken.Store(true)
		cancel()
	}()
	return qctx, func() bool {
		close(done)
		_ = c.nc.SetReadDeadline(time.Unix(1, 0))
		<-exited
		_ = c.nc.SetReadDeadline(time.Time{})
		cancel()
		return broken.Load()
	}
}
