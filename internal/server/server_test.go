package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"htap/internal/ch"
	"htap/internal/client"
	"htap/internal/core"
	"htap/internal/obs"
	"htap/internal/types"
	"htap/internal/wire"
)

// newEngine builds a loaded architecture-A engine for server tests.
func newEngine(t testing.TB, scale ch.Scale) (core.Engine, ch.Scale) {
	t.Helper()
	e := core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	if _, err := ch.NewGenerator(scale).Load(e); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, scale
}

func smallScale() ch.Scale {
	s := ch.SmallScale(1)
	s.Customers = 20
	s.Orders = 20
	s.Items = 50
	return s
}

// startServer serves the engine and returns a connected remote client.
func startServer(t testing.TB, cfg Config) (*Server, *client.Remote) {
	t.Helper()
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	srv, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	r, err := client.Connect(context.Background(), srv.Addr(), client.Options{Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return srv, r
}

func TestHandshakeMeta(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e, Meta: map[string]int64{"warehouses": 1, "hkey": 99}})
	if r.Arch() != core.ArchA {
		t.Fatalf("arch = %v", r.Arch())
	}
	if r.Meta()["warehouses"] != 1 || r.Meta()["hkey"] != 99 {
		t.Fatalf("meta = %v", r.Meta())
	}
}

func TestTxnRoundTrip(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})
	ctx := context.Background()

	// Read an existing warehouse row remotely and compare with a local read.
	wantTx := e.Begin(ctx)
	want, err := wantTx.Get(ch.TWarehouse, ch.WarehouseKey(1))
	wantTx.Abort()
	if err != nil {
		t.Fatal(err)
	}
	tx := r.Begin(ctx)
	got, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("remote row %v != local %v", got, want)
	}

	// Write through the wire, commit, and verify with a local transaction.
	upd := append(types.Row(nil), got...)
	upd[2] = types.NewString("W-REMOTE")
	if err := tx.Update(ch.TWarehouse, upd); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check := e.Begin(ctx)
	defer check.Abort()
	after, err := check.Get(ch.TWarehouse, ch.WarehouseKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if after[2].Str() != "W-REMOTE" {
		t.Fatalf("update lost: %v", after)
	}
}

func TestGetMissingKeyMapsToNotFound(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})
	tx := r.Begin(context.Background())
	defer tx.Abort()
	_, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(999))
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want core.ErrNotFound", err)
	}
}

func TestRemoteScanMatchesLocal(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})
	ctx := context.Background()
	local, err := e.Query(ctx, ch.TItem, []string{"i_id", "i_price"}, nil).RunCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := r.Query(ctx, ch.TItem, []string{"i_id", "i_price"}, nil).RunCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote rows %d != local %d", len(remote), len(local))
	}
}

func TestRemoteCHQuery(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})
	rows, err := r.RunCH(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Q1 returned no rows")
	}
	want, err := ch.RunQuery(context.Background(), e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("remote Q1 rows %d != local %d", len(rows), len(want))
	}
}

func TestSyncAndFreshness(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})
	ctx := context.Background()
	// Commit one remote write so there is a watermark to observe.
	err := core.Exec(ctx, r, func(tx core.Tx) error {
		row, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(1))
		if err != nil {
			return err
		}
		return tx.Update(ch.TWarehouse, append(types.Row(nil), row...))
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Sync()
	f := r.Freshness()
	want := e.Freshness()
	if f.CommitTS != want.CommitTS || f.LagTS != want.LagTS {
		t.Fatalf("remote freshness %+v != local %+v", f, want)
	}
	if !f.Fresh() {
		t.Fatalf("after sync expected fresh, got %+v", f)
	}
}

func TestCoreExecRetriesRemoteConflicts(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	_, r := startServer(t, Config{Engine: e})
	ctx := context.Background()
	// Concurrent increments of one district row: conflicts must surface as
	// retryable wire errors so core.Exec converges to the exact sum.
	const workers, rounds = 4, 5
	var wg sync.WaitGroup
	key := ch.DistrictKey(1, 1)
	base := func() int64 {
		tx := e.Begin(ctx)
		defer tx.Abort()
		row, err := tx.Get(ch.TDistrict, key)
		if err != nil {
			t.Fatal(err)
		}
		return row[6].Int()
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := core.Exec(ctx, r, func(tx core.Tx) error {
					row, err := tx.Get(ch.TDistrict, key)
					if err != nil {
						return err
					}
					upd := append(types.Row(nil), row...)
					upd[6] = types.NewInt(row[6].Int() + 1)
					return tx.Update(ch.TDistrict, upd)
				})
				if err != nil {
					t.Errorf("exec: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	got := func() int64 {
		tx := e.Begin(ctx)
		defer tx.Abort()
		row, err := tx.Get(ch.TDistrict, key)
		if err != nil {
			t.Fatal(err)
		}
		return row[6].Int()
	}()
	if got != base+workers*rounds {
		t.Fatalf("counter = %d, want %d", got, base+workers*rounds)
	}
}

func TestOLAPShedDoesNotBlockOLTP(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	reg := obs.NewRegistry()
	// OLAP budget of 2/sec with burst 1 and near-zero queueing: a burst
	// must shed. OLTP is unlimited and must keep committing throughout.
	srv, r := startServer(t, Config{
		Engine: e, Reg: reg,
		OLAPRate: 2, OLAPBurst: 1, MaxWait: time.Millisecond,
	})
	ctx := context.Background()

	var sheds int
	for i := 0; i < 10; i++ {
		_, err := r.RunCH(ctx, 1)
		if err != nil {
			if !errors.Is(err, wire.ErrOverloaded) {
				t.Fatalf("unexpected error: %v", err)
			}
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("10 back-to-back queries against a 2/s budget shed nothing")
	}
	shed := reg.Counter("htap_server_shed_total", obs.L("class", wire.ClassOLAP, "reason", "rate"))
	if shed.Value() == 0 {
		t.Fatal("htap_server_shed_total{class=olap,reason=rate} = 0 after sheds")
	}

	// OLTP unaffected: transactions still run while OLAP is saturated.
	err := core.Exec(ctx, r, func(tx core.Tx) error {
		_, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(1))
		return err
	})
	if err != nil {
		t.Fatalf("OLTP during OLAP shedding: %v", err)
	}
	if shedTP := reg.Counter("htap_server_shed_total", obs.L("class", wire.ClassOLTP, "reason", "rate")).Value(); shedTP != 0 {
		t.Fatalf("OLTP sheds = %d, want 0", shedTP)
	}
	_ = srv
}

func TestDeadlinePropagation(t *testing.T) {
	scale := ch.SmallScale(2) // bigger table so Q1 takes > 1ms
	scale.Customers = 200
	scale.Orders = 200
	e, _ := newEngine(t, scale)
	_, r := startServer(t, Config{Engine: e})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := r.RunCH(ctx, 1)
	if err == nil {
		t.Fatal("query finished despite 1ms deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestClientDisconnectCancelsServerQuery(t *testing.T) {
	scale := ch.SmallScale(2)
	scale.Customers = 300
	scale.Orders = 300
	e, _ := newEngine(t, scale)
	_, r := startServer(t, Config{Engine: e})

	// Baseline: how long the full query takes.
	t0 := time.Now()
	if _, err := r.RunCH(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	t0 = time.Now()
	_, err := r.RunCH(ctx, 1)
	took := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if full > 10*time.Millisecond && took > full/2 {
		t.Fatalf("cancelled query took %v, full scan takes %v", took, full)
	}
}

func TestGracefulDrain(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", Config{Engine: e, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := client.Connect(context.Background(), srv.Addr(), client.Options{
		Reg: obs.NewRegistry(), Retries: 1, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A transaction in flight when drain starts must be allowed to finish.
	tx := r.Begin(context.Background())
	if _, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(1)); err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let the drain flag land
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// After drain: new requests fail (connection refused = retryable
	// transport error, surfaced after the retry budget).
	if _, err := r.RunCH(context.Background(), 1); err == nil {
		t.Fatal("query succeeded against a drained server")
	}
}

func TestShutdownForceCancelsStuckConns(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	srv, err := Serve("127.0.0.1:0", Config{Engine: e, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	r, err := client.Connect(context.Background(), srv.Addr(), client.Options{Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Hold a transaction open and never finish it: the graceful phase
	// cannot complete, so Shutdown must fall back to severing.
	tx := r.Begin(context.Background())
	if _, err := tx.Get(ch.TWarehouse, ch.WarehouseKey(1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded from forced shutdown", err)
	}
	if took := time.Since(t0); took > 3*time.Second {
		t.Fatalf("forced shutdown took %v", took)
	}
}

func TestAdmissionMetricsRegistered(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	reg := obs.NewRegistry()
	_, r := startServer(t, Config{Engine: e, Reg: reg})
	if _, err := r.RunCH(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("htap_server_requests_total", obs.L("class", wire.ClassOLAP)).Value(); n == 0 {
		t.Fatal("htap_server_requests_total{class=olap} = 0 after a query")
	}
	if h := reg.Histogram("htap_server_request_ns", obs.L("class", wire.ClassOLAP)); h.Count() == 0 {
		t.Fatal("htap_server_request_ns{class=olap} has no observations")
	}
}

func TestLimiterShedsAndRecovers(t *testing.T) {
	l := NewLimiter(10, 1, time.Millisecond)
	ctx := context.Background()
	if _, err := l.Admit(ctx); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	// Exhaust: burst is 1, rate 10/s, queue bound 1ms < 100ms interval.
	var shed bool
	for i := 0; i < 5; i++ {
		if _, err := l.Admit(ctx); errors.Is(err, wire.ErrOverloaded) {
			shed = true
		}
	}
	if !shed {
		t.Fatal("no shed despite 5 immediate admits at 10/s burst 1")
	}
	time.Sleep(120 * time.Millisecond) // one interval refills one token
	if _, err := l.Admit(ctx); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
}

func TestLimiterUnlimited(t *testing.T) {
	l := NewLimiter(0, 0, 0)
	for i := 0; i < 1000; i++ {
		if w, err := l.Admit(context.Background()); err != nil || w != 0 {
			t.Fatalf("unlimited limiter blocked: wait %v err %v", w, err)
		}
	}
}

func TestLimiterQueueWaitCancellable(t *testing.T) {
	l := NewLimiter(5, 1, time.Second) // 200ms interval, generous queue
	if _, err := l.Admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := l.Admit(ctx) // must queue ~200ms, but ctx expires first
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(t0); took > 100*time.Millisecond {
		t.Fatalf("cancelled queue wait took %v", took)
	}
}

// TestHandshakeAdvertisesLiveHistoryWatermark pins the cross-driver key
// protocol: each remote driver bumps its history-key allocator from the
// handshake, so after one driver's Payments have inserted history rows,
// the next connection must see a watermark above those keys — a static
// load-time value would hand every successive driver the same range and
// produce cross-shard duplicate primary keys.
func TestHandshakeAdvertisesLiveHistoryWatermark(t *testing.T) {
	e, _ := newEngine(t, smallScale())
	base := ch.HistoryKeyWatermark()
	srv, r := startServer(t, Config{Engine: e, Meta: map[string]int64{"hkey": base}})
	if got := r.Meta()["hkey"]; got != base {
		t.Fatalf("first handshake hkey = %d, want load-time watermark %d", got, base)
	}

	// A driver that allocated above the watermark inserts a history row,
	// exactly as a remote Payment does.
	ctx := context.Background()
	hi := base + 1000
	tx := r.Begin(ctx)
	err := tx.Insert(ch.THistory, types.Row{
		types.NewInt(hi), types.NewInt(ch.CustomerKey(1, 1, 1)),
		types.NewInt(1), types.NewInt(1), types.NewInt(0),
		types.NewFloat(10), types.NewString("payment"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh connection's handshake must cover the inserted key.
	r2, err := client.Connect(ctx, srv.Addr(), client.Options{Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Meta()["hkey"]; got < hi {
		t.Fatalf("second handshake hkey = %d, want >= %d (stale watermark re-issues driver key ranges)", got, hi)
	}
}
