package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Endpoint names one server address.
type Endpoint struct {
	Name string
	Addr string
}

// Endpoints is a set of named Remotes — the distributed coordinator's view
// of its shard servers, or an application's view of replicas — with a
// health-aware pick. Each endpoint keeps its own connection pool; this
// layer only decides which endpoint a request should use.
//
// Health is passive: callers Report the outcome of work they ran against
// an endpoint, and transport-level failures put it in a cooldown that
// doubles with consecutive failures. Pick skips cooling endpoints and
// round-robins across the healthy rest; when everything is cooling it
// returns the endpoint whose cooldown expires first, so a fully-partitioned
// client keeps probing rather than failing forever.
type Endpoints struct {
	mu   sync.Mutex
	all  []*endpointState
	name map[string]*endpointState
	next int
	now  func() time.Time // injectable in tests

	// cooldown bounds; defaults fit the pool's retry backoff scale.
	base, max time.Duration
}

type endpointState struct {
	name      string
	r         *Remote
	fails     int
	coolUntil time.Time
}

// ConnectEndpoints dials every endpoint with the same options. A dial
// failure closes whatever connected and reports which endpoint failed.
func ConnectEndpoints(ctx context.Context, eps []Endpoint, opt Options) (*Endpoints, error) {
	if len(eps) == 0 {
		return nil, errors.New("client: no endpoints")
	}
	e := &Endpoints{
		name: make(map[string]*endpointState, len(eps)),
		now:  time.Now,
		base: 50 * time.Millisecond,
		max:  5 * time.Second,
	}
	for _, ep := range eps {
		if _, dup := e.name[ep.Name]; dup {
			e.Close()
			return nil, fmt.Errorf("client: duplicate endpoint %q", ep.Name)
		}
		r, err := Connect(ctx, ep.Addr, opt)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("client: endpoint %q (%s): %w", ep.Name, ep.Addr, err)
		}
		st := &endpointState{name: ep.Name, r: r}
		e.all = append(e.all, st)
		e.name[ep.Name] = st
	}
	return e, nil
}

// Get returns the endpoint by name (nil when unknown). Shard-addressed
// work — a routed transaction, a scan fragment — must land on its shard
// regardless of health; only Pick is health-aware.
func (e *Endpoints) Get(name string) *Remote {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.name[name]; st != nil {
		return st.r
	}
	return nil
}

// Names lists the endpoints in registration order.
func (e *Endpoints) Names() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.all))
	for i, st := range e.all {
		out[i] = st.name
	}
	return out
}

// Pick returns a healthy endpoint for placement-free work, round-robin so
// load spreads. Endpoints in cooldown are skipped; if every endpoint is
// cooling, the one recovering soonest is returned so traffic probes it.
func (e *Endpoints) Pick() (string, *Remote) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	n := len(e.all)
	var soonest *endpointState
	for i := 0; i < n; i++ {
		st := e.all[(e.next+i)%n]
		if !st.coolUntil.After(now) {
			e.next = (e.next + i + 1) % n
			return st.name, st.r
		}
		if soonest == nil || st.coolUntil.Before(soonest.coolUntil) {
			soonest = st
		}
	}
	return soonest.name, soonest.r
}

// Report records the outcome of work run against an endpoint. Success
// clears its failure streak; a transport-level failure (directly, or
// wrapped inside an indeterminate commit) starts or extends a cooldown
// that doubles per consecutive failure, capped. Logical errors — conflict,
// not-found, overload shedding — say nothing about the endpoint's health
// and are ignored.
func (e *Endpoints) Report(name string, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.name[name]
	if st == nil {
		return
	}
	var te *TransportError
	if err == nil || !errors.As(err, &te) {
		st.fails = 0
		st.coolUntil = time.Time{}
		return
	}
	cool := e.base << min(st.fails, 30)
	if cool > e.max {
		cool = e.max
	}
	st.fails++
	st.coolUntil = e.now().Add(cool)
}

// Close closes every endpoint's pool.
func (e *Endpoints) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.all {
		st.r.Close()
	}
	e.all = nil
	e.name = map[string]*endpointState{}
}
