package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"htap/internal/obs"
)

// startEndpoints dials n fake servers into one pool with a controllable
// clock.
func startEndpoints(t *testing.T, n int) (*Endpoints, *time.Time) {
	t.Helper()
	eps := make([]Endpoint, n)
	for i := range eps {
		f := startFake(t, handshakeThenClose)
		eps[i] = Endpoint{Name: []string{"alpha", "beta", "gamma"}[i], Addr: f.addr()}
	}
	p, err := ConnectEndpoints(context.Background(), eps, Options{Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }
	return p, &now
}

func TestEndpointsGetByName(t *testing.T) {
	p, _ := startEndpoints(t, 3)
	if p.Get("beta") == nil {
		t.Fatal("named endpoint not found")
	}
	if p.Get("nope") != nil {
		t.Fatal("unknown endpoint should be nil")
	}
	if got := p.Names(); len(got) != 3 || got[0] != "alpha" || got[2] != "gamma" {
		t.Fatalf("Names() = %v, want registration order", got)
	}
}

func TestEndpointsDuplicateNameRejected(t *testing.T) {
	f := startFake(t, handshakeThenClose, handshakeThenClose)
	_, err := ConnectEndpoints(context.Background(), []Endpoint{
		{Name: "a", Addr: f.addr()}, {Name: "a", Addr: f.addr()},
	}, Options{Reg: obs.NewRegistry()})
	if err == nil {
		t.Fatal("duplicate endpoint name must be rejected")
	}
}

func TestEndpointsPickRoundRobinsHealthy(t *testing.T) {
	p, _ := startEndpoints(t, 3)
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		name, r := p.Pick()
		if r == nil {
			t.Fatal("nil remote from Pick")
		}
		seen[name]++
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if seen[name] != 2 {
			t.Fatalf("round-robin spread %v, want 2 each", seen)
		}
	}
}

// TestEndpointsTransportFailureCools pins the health policy: transport
// errors cool an endpoint out of Pick with an exponentially growing
// cooldown; logical errors say nothing about health.
func TestEndpointsTransportFailureCools(t *testing.T) {
	p, now := startEndpoints(t, 2)

	p.Report("alpha", &TransportError{Err: errors.New("conn reset")})
	for i := 0; i < 4; i++ {
		if name, _ := p.Pick(); name != "beta" {
			t.Fatalf("pick %d chose cooling endpoint %q", i, name)
		}
	}

	// After the base cooldown expires, alpha is pickable again.
	*now = now.Add(p.base + time.Millisecond)
	picked := map[string]bool{}
	for i := 0; i < 2; i++ {
		name, _ := p.Pick()
		picked[name] = true
	}
	if !picked["alpha"] {
		t.Fatal("recovered endpoint never picked")
	}

	// A second consecutive failure doubles the cooldown.
	p.Report("alpha", &TransportError{Err: errors.New("conn reset again")})
	*now = now.Add(p.base + time.Millisecond)
	if name, _ := p.Pick(); name != "beta" {
		t.Fatalf("doubled cooldown not honored; picked %q", name)
	}

	// Success clears the streak entirely.
	*now = now.Add(2 * p.base)
	p.Report("alpha", nil)
	p.Report("alpha", &TransportError{Err: errors.New("reset")})
	*now = now.Add(p.base + time.Millisecond)
	found := false
	for i := 0; i < 2; i++ {
		if name, _ := p.Pick(); name == "alpha" {
			found = true
		}
	}
	if !found {
		t.Fatal("success did not reset the cooldown streak")
	}
}

// TestEndpointsLogicalErrorsIgnored: a conflict or shed says nothing about
// endpoint health.
func TestEndpointsLogicalErrorsIgnored(t *testing.T) {
	p, _ := startEndpoints(t, 2)
	p.Report("alpha", errors.New("conflict"))
	picked := map[string]bool{}
	for i := 0; i < 2; i++ {
		name, _ := p.Pick()
		picked[name] = true
	}
	if !picked["alpha"] || !picked["beta"] {
		t.Fatalf("logical error changed pick rotation: %v", picked)
	}
}

// TestEndpointsAllCoolingPicksSoonest: a fully-partitioned client keeps
// probing the endpoint that recovers first rather than failing forever.
func TestEndpointsAllCoolingPicksSoonest(t *testing.T) {
	p, now := startEndpoints(t, 2)
	p.Report("alpha", &TransportError{Err: errors.New("down")})
	p.Report("alpha", &TransportError{Err: errors.New("down")}) // cooldown doubled
	*now = now.Add(time.Millisecond)
	p.Report("beta", &TransportError{Err: errors.New("down")}) // cooling, expires first
	if name, r := p.Pick(); name != "beta" || r == nil {
		t.Fatalf("picked %q, want the endpoint recovering soonest (beta)", name)
	}
}
