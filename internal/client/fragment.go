package client

import (
	"context"
	"sort"

	"htap/internal/exec"
	"htap/internal/obs"
	"htap/internal/types"
	"htap/internal/wire"
)

// FragmentSource is a lazy remote scan: an exec.Source that does not touch
// the network until the plan actually pulls from it. The window between
// construction and first pull is what makes distributed pushdown work —
// Plan.Filter's rewrite runs in that window and offers this source its
// bound conjuncts (exec.PredPusher), which travel to the server inside the
// fragment frame instead of filtering rows after they crossed the wire.
//
// A fetch failure is reported to the OnError sink (the distributed
// coordinator routes it into the query's error path) and the source reads
// as exhausted; it never fabricates rows.
type FragmentSource struct {
	r      *Remote
	ctx    context.Context
	m      wire.Fragment
	schema []types.Column
	onErr  func(error)

	started bool
	inner   exec.Source
}

// Fragment builds a lazy source over table on this endpoint. schema is the
// projected result schema (the coordinator knows it from the catalog; the
// wire carries only the column names). pred is the advisory zone-map range,
// exactly as on the local Query path.
func (r *Remote) Fragment(ctx context.Context, table string, schema []types.Column, pred *exec.ScanPred) *FragmentSource {
	m := wire.Fragment{Deadline: deadlineOf(ctx), Table: table}
	for _, c := range schema {
		m.Cols = append(m.Cols, c.Name)
	}
	if pred != nil {
		m.HasPred, m.PredCol, m.PredLo, m.PredHi = true, pred.Col, pred.Lo, pred.Hi
	}
	m.Profile = exec.ProfileFrom(ctx) != nil
	return &FragmentSource{r: r, ctx: ctx, m: m, schema: schema}
}

// OnError registers the sink that receives a fetch failure. Without a sink
// the failure still poisons the source (no rows), but only the sink can
// turn it into a query-level error.
func (s *FragmentSource) OnError(fn func(error)) { s.onErr = fn }

// Schema implements exec.Source without fetching.
func (s *FragmentSource) Schema() []types.Column { return s.schema }

// PushPred implements exec.PredPusher: an accepted conjunct is evaluated
// on the server, inside the shard engine's own scan pushdown machinery.
// Once the fragment has been sent nothing more can be pushed.
func (s *FragmentSource) PushPred(p exec.PushedPred) bool {
	if s.started {
		return false
	}
	fp, ok := fragPredOf(p)
	if !ok {
		return false
	}
	s.m.Preds = append(s.m.Preds, fp)
	return true
}

// fragPredOf converts an exec-level pushed predicate to its wire form.
func fragPredOf(p exec.PushedPred) (wire.FragPred, bool) {
	switch p.Kind {
	case exec.PushCmp:
		return wire.FragPred{Kind: wire.FragPredCmp, Col: p.Col, Op: uint8(p.Op), Datum: p.Datum}, true
	case exec.PushPrefix:
		return wire.FragPred{Kind: wire.FragPredPrefix, Col: p.Col, Prefix: p.Prefix}, true
	case exec.PushInSet:
		ints := append([]int64(nil), p.Ints...)
		sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
		return wire.FragPred{Kind: wire.FragPredInSet, Col: p.Col, Ints: ints}, true
	default:
		return wire.FragPred{}, false
	}
}

// fetch runs the fragment once, materializing the shard's (filtered,
// projected) rows. Retries ride the pool's normal do() loop — the fragment
// is read-only and idempotent.
func (s *FragmentSource) fetch() {
	if s.started {
		return
	}
	s.started = true
	var rows []types.Row
	err := s.r.do(s.ctx, wire.ClassOLAP, func(c *conn, sp *obs.Span) error {
		if sp != nil {
			s.m.TraceID, s.m.SpanID = sp.TraceID(), sp.SpanID()
		}
		typ, payload, err := c.roundTrip(s.ctx, wire.MsgFragment, s.m.Encode(nil))
		if err != nil {
			return err
		}
		var eos wire.EOS
		_, rows, eos, err = readStream(s.ctx, c, typ, payload)
		if err == nil {
			adoptRemoteProfile(s.ctx, eos)
		}
		return err
	})
	if err != nil {
		if s.onErr != nil {
			s.onErr(err)
		}
		return
	}
	s.inner = exec.NewMemSource(s.schema, rows)
}

// Next implements exec.Source; the first call triggers the remote fetch.
func (s *FragmentSource) Next() *exec.Batch {
	s.fetch()
	if s.inner == nil {
		return nil
	}
	return s.inner.Next()
}

// Split implements exec.Splitter so parallel plans can fan out over the
// fetched rows; splitting forces the fetch. A failed fragment does not
// split — the sequential path then observes the poisoned source.
func (s *FragmentSource) Split(n int) []exec.Source {
	s.fetch()
	if s.inner == nil {
		return nil
	}
	if sp, ok := s.inner.(exec.Splitter); ok {
		return sp.Split(n)
	}
	return nil
}

// hasCol reports whether the fragment's projection carries col.
func (s *FragmentSource) hasCol(col string) bool {
	for _, c := range s.schema {
		if c.Name == col {
			return true
		}
	}
	return false
}

// CanPushAgg reports whether this fragment could carry the aggregation
// in its frame: not yet sent, no other spec, every group-by column in
// the projection, and every aggregate either COUNT(*) or over a bare
// projected column (expressions don't travel over the wire). The
// coordinator dry-checks every remote member before converting any of
// them, so a mixed verdict never leaves a fragment half-switched.
func (s *FragmentSource) CanPushAgg(groupBy []string, aggs []exec.Agg) bool {
	if s.started || s.m.Agg != nil || s.m.TopK != nil {
		return false
	}
	for _, g := range groupBy {
		if !s.hasCol(g) {
			return false
		}
	}
	for _, a := range aggs {
		if a.Kind < exec.Sum || a.Kind > exec.Max {
			return false
		}
		if a.Kind == exec.Count {
			continue
		}
		col, ok := exec.BareColumn(a.Expr)
		if !ok || !s.hasCol(col) {
			return false
		}
	}
	return true
}

// PushAgg switches the fragment to partial-aggregation mode: the frame
// carries the aggregate spec, the server streams MsgPartial group
// states, and the returned PartialSource decodes them. The batch-stream
// path is disabled (Next reads as exhausted) — the combine operator is
// now the only consumer.
func (s *FragmentSource) PushAgg(groupBy []string, aggs []exec.Agg) exec.PartialSource {
	if !s.CanPushAgg(groupBy, aggs) {
		return nil
	}
	spec := &wire.FragAgg{GroupBy: append([]string(nil), groupBy...)}
	for _, a := range aggs {
		fn := wire.FragAggFn{Kind: uint8(a.Kind)}
		if a.Kind != exec.Count {
			fn.Col, _ = exec.BareColumn(a.Expr)
		}
		spec.Aggs = append(spec.Aggs, fn)
	}
	s.m.Agg = spec
	s.started = true // block the batch fetch path
	return &partialFragment{s: s, nKey: len(groupBy), aggs: aggs}
}

// CanPushTopK reports whether this fragment could carry the top-k spec:
// not yet sent, no other spec, every sort key in the projection.
func (s *FragmentSource) CanPushTopK(keys []exec.SortKey) bool {
	if s.started || s.m.Agg != nil || s.m.TopK != nil {
		return false
	}
	for _, k := range keys {
		if !s.hasCol(k.Col) {
			return false
		}
	}
	return true
}

// PushTopK attaches a top-k spec: the server bounds the fragment's
// reply to the k smallest rows under keys (total order). The reply
// stays a normal batch stream, so the source keeps serving Next.
func (s *FragmentSource) PushTopK(k int, keys []exec.SortKey) bool {
	if !s.CanPushTopK(keys) {
		return false
	}
	spec := &wire.FragTopK{K: int64(k)}
	for _, key := range keys {
		spec.Keys = append(spec.Keys, wire.FragSortKey{Col: key.Col, Desc: key.Desc})
	}
	s.m.TopK = spec
	return true
}

// partialFragment is the remote half of a pushed aggregation: one
// fragment round-trip returning decoded partial groups. Failures
// (transport, protocol, malformed groups) are reported to the parent
// fragment's error sink and the source reads as exhausted.
type partialFragment struct {
	s    *FragmentSource
	nKey int
	aggs []exec.Agg

	fetched bool
	groups  []*exec.PartialGroup
	pos     int
}

func (p *partialFragment) fetch() {
	if p.fetched {
		return
	}
	p.fetched = true
	var groups []*exec.PartialGroup
	err := p.s.r.do(p.s.ctx, wire.ClassOLAP, func(c *conn, sp *obs.Span) error {
		if sp != nil {
			p.s.m.TraceID, p.s.m.SpanID = sp.TraceID(), sp.SpanID()
		}
		typ, payload, err := c.roundTrip(p.s.ctx, wire.MsgFragment, p.s.m.Encode(nil))
		if err != nil {
			return err
		}
		rows, eos, err := readPartialStream(p.s.ctx, c, typ, payload)
		if err != nil {
			return err
		}
		adoptRemoteProfile(p.s.ctx, eos)
		gs := make([]*exec.PartialGroup, 0, len(rows))
		for _, r := range rows {
			g, derr := exec.DecodePartial(r, p.nKey, p.aggs)
			if derr != nil {
				// Frames decoded but the group contents are invalid: a
				// server-side protocol violation. The stream position is
				// consumed, but trust in the peer is not — fail the conn
				// and surface a non-retryable error.
				c.broken.Store(true)
				return derr
			}
			gs = append(gs, g)
		}
		groups = gs
		return nil
	})
	if err != nil {
		if p.s.onErr != nil {
			p.s.onErr(err)
		}
		return
	}
	p.groups = groups
}

// NextPartial implements exec.PartialSource; the first call triggers
// the remote fetch.
func (p *partialFragment) NextPartial() *exec.PartialGroup {
	p.fetch()
	if p.pos >= len(p.groups) {
		return nil
	}
	g := p.groups[p.pos]
	p.pos++
	return g
}
