package client

import (
	"context"
	"sort"

	"htap/internal/exec"
	"htap/internal/obs"
	"htap/internal/types"
	"htap/internal/wire"
)

// FragmentSource is a lazy remote scan: an exec.Source that does not touch
// the network until the plan actually pulls from it. The window between
// construction and first pull is what makes distributed pushdown work —
// Plan.Filter's rewrite runs in that window and offers this source its
// bound conjuncts (exec.PredPusher), which travel to the server inside the
// fragment frame instead of filtering rows after they crossed the wire.
//
// A fetch failure is reported to the OnError sink (the distributed
// coordinator routes it into the query's error path) and the source reads
// as exhausted; it never fabricates rows.
type FragmentSource struct {
	r      *Remote
	ctx    context.Context
	m      wire.Fragment
	schema []types.Column
	onErr  func(error)

	started bool
	inner   exec.Source
}

// Fragment builds a lazy source over table on this endpoint. schema is the
// projected result schema (the coordinator knows it from the catalog; the
// wire carries only the column names). pred is the advisory zone-map range,
// exactly as on the local Query path.
func (r *Remote) Fragment(ctx context.Context, table string, schema []types.Column, pred *exec.ScanPred) *FragmentSource {
	m := wire.Fragment{Deadline: deadlineOf(ctx), Table: table}
	for _, c := range schema {
		m.Cols = append(m.Cols, c.Name)
	}
	if pred != nil {
		m.HasPred, m.PredCol, m.PredLo, m.PredHi = true, pred.Col, pred.Lo, pred.Hi
	}
	m.Profile = exec.ProfileFrom(ctx) != nil
	return &FragmentSource{r: r, ctx: ctx, m: m, schema: schema}
}

// OnError registers the sink that receives a fetch failure. Without a sink
// the failure still poisons the source (no rows), but only the sink can
// turn it into a query-level error.
func (s *FragmentSource) OnError(fn func(error)) { s.onErr = fn }

// Schema implements exec.Source without fetching.
func (s *FragmentSource) Schema() []types.Column { return s.schema }

// PushPred implements exec.PredPusher: an accepted conjunct is evaluated
// on the server, inside the shard engine's own scan pushdown machinery.
// Once the fragment has been sent nothing more can be pushed.
func (s *FragmentSource) PushPred(p exec.PushedPred) bool {
	if s.started {
		return false
	}
	fp, ok := fragPredOf(p)
	if !ok {
		return false
	}
	s.m.Preds = append(s.m.Preds, fp)
	return true
}

// fragPredOf converts an exec-level pushed predicate to its wire form.
func fragPredOf(p exec.PushedPred) (wire.FragPred, bool) {
	switch p.Kind {
	case exec.PushCmp:
		return wire.FragPred{Kind: wire.FragPredCmp, Col: p.Col, Op: uint8(p.Op), Datum: p.Datum}, true
	case exec.PushPrefix:
		return wire.FragPred{Kind: wire.FragPredPrefix, Col: p.Col, Prefix: p.Prefix}, true
	case exec.PushInSet:
		ints := append([]int64(nil), p.Ints...)
		sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
		return wire.FragPred{Kind: wire.FragPredInSet, Col: p.Col, Ints: ints}, true
	default:
		return wire.FragPred{}, false
	}
}

// fetch runs the fragment once, materializing the shard's (filtered,
// projected) rows. Retries ride the pool's normal do() loop — the fragment
// is read-only and idempotent.
func (s *FragmentSource) fetch() {
	if s.started {
		return
	}
	s.started = true
	var rows []types.Row
	err := s.r.do(s.ctx, wire.ClassOLAP, func(c *conn, sp *obs.Span) error {
		if sp != nil {
			s.m.TraceID, s.m.SpanID = sp.TraceID(), sp.SpanID()
		}
		typ, payload, err := c.roundTrip(s.ctx, wire.MsgFragment, s.m.Encode(nil))
		if err != nil {
			return err
		}
		var eos wire.EOS
		_, rows, eos, err = readStream(s.ctx, c, typ, payload)
		if err == nil {
			adoptRemoteProfile(s.ctx, eos)
		}
		return err
	})
	if err != nil {
		if s.onErr != nil {
			s.onErr(err)
		}
		return
	}
	s.inner = exec.NewMemSource(s.schema, rows)
}

// Next implements exec.Source; the first call triggers the remote fetch.
func (s *FragmentSource) Next() *exec.Batch {
	s.fetch()
	if s.inner == nil {
		return nil
	}
	return s.inner.Next()
}

// Split implements exec.Splitter so parallel plans can fan out over the
// fetched rows; splitting forces the fetch. A failed fragment does not
// split — the sequential path then observes the poisoned source.
func (s *FragmentSource) Split(n int) []exec.Source {
	s.fetch()
	if s.inner == nil {
		return nil
	}
	if sp, ok := s.inner.(exec.Splitter); ok {
		return sp.Split(n)
	}
	return nil
}
