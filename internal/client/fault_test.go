package client

// Fault-injection tests for retry/backoff, in the style of disk.FaultPlan:
// a scripted fake server applies one deterministic connection behavior per
// accepted connection — accept-then-close, handshake-then-die, mid-frame
// drop, stalled read, scripted error frames — and the tests assert exactly
// how the client's pool, retry budget, and backoff respond.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/obs"
	"htap/internal/types"
	"htap/internal/wire"
)

// behavior drives one accepted connection.
type behavior func(t *testing.T, nc net.Conn)

// fakeServer accepts connections and applies scripted behaviors in
// order; connections beyond the script are closed immediately.
type fakeServer struct {
	ln net.Listener
}

func startFake(t *testing.T, script ...behavior) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for i := 0; ; i++ {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			if i < len(script) {
				b := script[i]
				go func() {
					defer nc.Close()
					b(t, nc)
				}()
			} else {
				_ = nc.Close()
			}
		}
	}()
	return &fakeServer{ln: ln}
}

func (f *fakeServer) addr() string { return f.ln.Addr().String() }

// handshake performs the server half of the handshake.
func handshake(t *testing.T, nc net.Conn) bool {
	typ, payload, err := wire.ReadFrame(nc)
	if err != nil || typ != wire.MsgHello {
		return false
	}
	if _, err := wire.DecodeHello(payload); err != nil {
		return false
	}
	h := wire.ServerHello{Version: wire.Version, Arch: 1, Meta: map[string]int64{"fake": 1}}
	return wire.WriteFrame(nc, wire.MsgServerHello, h.Encode(nil)) == nil
}

// serveN answers n MsgQuery requests on an already-handshaken
// connection with a one-row stream each.
func serveN(nc net.Conn, n int) {
	for i := 0; i < n; i++ {
		typ, _, err := wire.ReadFrame(nc)
		if err != nil || typ != wire.MsgQuery {
			return
		}
		sch := wire.Schema{Cols: []types.Column{{Name: "c0", Type: types.Int}}}
		row := types.Row{types.NewInt(42)}
		if wire.WriteFrame(nc, wire.MsgSchema, sch.Encode(nil)) != nil {
			return
		}
		if wire.WriteFrame(nc, wire.MsgBatch, wire.Batch{Rows: []types.Row{row}}.Encode(nil)) != nil {
			return
		}
		if wire.WriteFrame(nc, wire.MsgEOS, wire.EOS{Rows: 1}.Encode(nil)) != nil {
			return
		}
	}
}

// serveQueries handshakes then answers n MsgQuery requests, then returns
// (closing the connection).
func serveQueries(n int) behavior {
	return func(t *testing.T, nc net.Conn) {
		if handshake(t, nc) {
			serveN(nc, n)
		}
	}
}

// handshakeThenClose completes the handshake and drops the connection,
// so the next request hits EOF.
func handshakeThenClose(t *testing.T, nc net.Conn) {
	handshake(t, nc)
}

// acceptThenClose drops the connection before the handshake.
func acceptThenClose(t *testing.T, nc net.Conn) {}

// midFrameDrop completes the handshake, reads one request, writes half a
// response frame header, and drops the connection.
func midFrameDrop(t *testing.T, nc net.Conn) {
	if !handshake(t, nc) {
		return
	}
	if _, _, err := wire.ReadFrame(nc); err != nil {
		return
	}
	_, _ = nc.Write([]byte{0, 0, 0}) // 3 of 5 header bytes
}

// stalledRead completes the handshake, reads one request, and never
// responds; only the client's context can end the exchange.
func stalledRead(t *testing.T, nc net.Conn) {
	if !handshake(t, nc) {
		return
	}
	if _, _, err := wire.ReadFrame(nc); err != nil {
		return
	}
	buf := make([]byte, 1)
	_, _ = nc.Read(buf) // blocks until the client closes
}

// errorThenServe sheds the first q requests with the given wire error,
// then serves queries normally on the same connection.
func errorThenServe(code uint8, q int, serve int) behavior {
	return func(t *testing.T, nc net.Conn) {
		if !handshake(t, nc) {
			return
		}
		for i := 0; i < q; i++ {
			if _, _, err := wire.ReadFrame(nc); err != nil {
				return
			}
			e := &wire.Error{Code: code, Msg: "scripted"}
			if wire.WriteFrame(nc, wire.MsgError, wire.EncodeError(nil, e)) != nil {
				return
			}
		}
		serveN(nc, serve)
	}
}

func connect(t *testing.T, f *fakeServer, opt Options) (*Remote, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opt.Reg = reg
	opt.Backoff = time.Millisecond
	r, err := Connect(context.Background(), f.addr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, reg
}

func retries(reg *obs.Registry) int64 {
	return reg.Counter("htap_client_retries_total", obs.L("class", wire.ClassOLAP)).Value()
}

func TestRetryAfterServerDropsPooledConn(t *testing.T) {
	// Conn 1 handshakes (Connect pools it) then dies; conn 2 is dropped
	// before the handshake; conn 3 serves. The request must survive both
	// faults on its retry budget.
	f := startFake(t, handshakeThenClose, acceptThenClose, serveQueries(1))
	r, reg := connect(t, f, Options{})
	rows, err := r.RunCH(context.Background(), 1)
	if err != nil {
		t.Fatalf("RunCH: %v", err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 42 {
		t.Fatalf("rows = %v", rows)
	}
	if got := retries(reg); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if dials := reg.Counter("htap_client_dials_total", nil).Value(); dials != 3 {
		t.Fatalf("dials = %d, want 3", dials)
	}
}

func TestRetryAfterMidFrameDrop(t *testing.T) {
	f := startFake(t, midFrameDrop, serveQueries(1))
	r, reg := connect(t, f, Options{})
	rows, err := r.RunCH(context.Background(), 1)
	if err != nil {
		t.Fatalf("RunCH: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if got := retries(reg); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
}

func TestStalledReadEndsWithDeadlineNotRetry(t *testing.T) {
	f := startFake(t, stalledRead, serveQueries(1))
	r, reg := connect(t, f, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := r.RunCH(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("stalled request took %v", took)
	}
	// Context expiry is not retryable: the client must not have burned
	// the retry budget re-sending into a stall.
	if got := retries(reg); got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
}

func TestRetryOnOverloadedThenSucceed(t *testing.T) {
	f := startFake(t, errorThenServe(wire.CodeOverloaded, 2, 1))
	r, reg := connect(t, f, Options{})
	rows, err := r.RunCH(context.Background(), 1)
	if err != nil {
		t.Fatalf("RunCH: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if got := retries(reg); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	// The shed responses were clean request-level errors: the connection
	// stayed healthy and pooled, so no extra dials happened.
	if dials := reg.Counter("htap_client_dials_total", nil).Value(); dials != 1 {
		t.Fatalf("dials = %d, want 1", dials)
	}
}

func TestExhaustedRetriesSurfaceOverloaded(t *testing.T) {
	f := startFake(t, errorThenServe(wire.CodeOverloaded, 100, 0))
	r, reg := connect(t, f, Options{Retries: 2})
	_, err := r.RunCH(context.Background(), 1)
	if !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded after exhausted retries", err)
	}
	if got := retries(reg); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

func TestNonRetryableErrorFailsFast(t *testing.T) {
	f := startFake(t, errorThenServe(wire.CodeInternal, 1, 1))
	r, reg := connect(t, f, Options{})
	_, err := r.RunCH(context.Background(), 1)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeInternal {
		t.Fatalf("err = %v, want internal wire error", err)
	}
	if got := retries(reg); got != 0 {
		t.Fatalf("retries = %d, want 0 for non-retryable error", got)
	}
}

func TestBackoffDelaysRetries(t *testing.T) {
	f := startFake(t, errorThenServe(wire.CodeOverloaded, 2, 1))
	reg := obs.NewRegistry()
	r, err := Connect(context.Background(), f.addr(), Options{
		Reg: reg, Backoff: 20 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	t0 := time.Now()
	if _, err := r.RunCH(context.Background(), 1); err != nil {
		t.Fatalf("RunCH: %v", err)
	}
	// Two retries at 20ms then 40ms base delay, jittered to >= 50% each:
	// at least 30ms must have elapsed. (An unjittered immediate-retry bug
	// finishes in well under a millisecond.)
	if took := time.Since(t0); took < 30*time.Millisecond {
		t.Fatalf("2 backoff retries finished in %v, want >= 30ms", took)
	}
}

// commitThenDie completes the handshake, acknowledges the transaction's
// begin and writes, and drops the connection upon reading MsgCommit
// without answering — the indeterminate-commit window.
func commitThenDie(t *testing.T, nc net.Conn) {
	if !handshake(t, nc) {
		return
	}
	for {
		typ, _, err := wire.ReadFrame(nc)
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgCommit:
			return // die without a response: the outcome is unknown
		default:
			if wire.WriteFrame(nc, wire.MsgOK, nil) != nil {
				return
			}
		}
	}
}

func TestCommitTransportFailureIsIndeterminateNotRetried(t *testing.T) {
	// The connection dies after MsgCommit is sent but before MsgOK
	// arrives. The server may have applied the commit, so core.Exec must
	// NOT re-run the transaction — a retry could double-apply it.
	f := startFake(t, commitThenDie)
	r, _ := connect(t, f, Options{})
	attempts := 0
	err := core.Exec(context.Background(), r, func(tx core.Tx) error {
		attempts++
		return tx.Insert("acct", types.Row{types.NewInt(1)})
	})
	var ci *CommitIndeterminateError
	if !errors.As(err, &ci) {
		t.Fatalf("err = %v, want CommitIndeterminateError", err)
	}
	if core.IsRetryable(err) {
		t.Fatal("indeterminate commit reported as retryable")
	}
	if attempts != 1 {
		t.Fatalf("transaction body ran %d times, want 1: an indeterminate commit must not be retried", attempts)
	}
}

// corruptStream completes the handshake, answers one query with a schema
// frame followed by an undecodable batch frame, then keeps serving on the
// same connection — which the client must never reuse.
func corruptStream(t *testing.T, nc net.Conn) {
	if !handshake(t, nc) {
		return
	}
	if _, _, err := wire.ReadFrame(nc); err != nil {
		return
	}
	sch := wire.Schema{Cols: []types.Column{{Name: "c0", Type: types.Int}}}
	if wire.WriteFrame(nc, wire.MsgSchema, sch.Encode(nil)) != nil {
		return
	}
	if wire.WriteFrame(nc, wire.MsgBatch, []byte{0xff}) != nil {
		return
	}
	serveN(nc, 1)
}

func TestCorruptStreamConnNotPooled(t *testing.T) {
	// A mid-stream decode failure abandons the stream with frames still
	// in flight. The connection must be discarded: the next request has
	// to dial fresh (and succeed) instead of reading stale frames.
	f := startFake(t, corruptStream, serveQueries(1))
	r, reg := connect(t, f, Options{})
	if _, err := r.RunCH(context.Background(), 1); err == nil {
		t.Fatal("corrupt stream returned no error")
	}
	rows, err := r.RunCH(context.Background(), 1)
	if err != nil {
		t.Fatalf("RunCH after corrupt stream: %v", err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 42 {
		t.Fatalf("rows = %v", rows)
	}
	if dials := reg.Counter("htap_client_dials_total", nil).Value(); dials != 2 {
		t.Fatalf("dials = %d, want 2 (corrupt conn discarded, fresh dial)", dials)
	}
}

func TestFailedQueryPlanCarriesError(t *testing.T) {
	// A scan that fails after retries must return a plan that reports
	// the failure, not one indistinguishable from an empty table.
	f := startFake(t, errorThenServe(wire.CodeInternal, 1, 0))
	r, _ := connect(t, f, Options{})
	plan := r.Query(context.Background(), "acct", nil, nil)
	var we *wire.Error
	if err := plan.Err(); !errors.As(err, &we) || we.Code != wire.CodeInternal {
		t.Fatalf("plan.Err() = %v, want internal wire error", plan.Err())
	}
	rows, err := plan.RunCtx(context.Background())
	if err == nil || rows != nil {
		t.Fatalf("RunCtx = (%v, %v), want (nil, error)", rows, err)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	a := &Remote{opt: Options{}.withDefaults()}
	b := &Remote{opt: Options{}.withDefaults()}
	a.rng = rand.New(rand.NewSource(9))
	b.rng = rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		da, db := a.jitter(time.Millisecond), b.jitter(time.Millisecond)
		if da != db {
			t.Fatalf("iteration %d: %v != %v with equal seeds", i, da, db)
		}
		if da < 500*time.Microsecond || da > 1500*time.Microsecond {
			t.Fatalf("jitter %v outside 50%%..150%%", da)
		}
	}
}

// malformedPartial answers one pushed-aggregation fragment with a
// MsgPartial whose group row decodes at the wire layer but violates the
// partial-state contract (wrong arity for the advertised aggregates).
func malformedPartial(t *testing.T, nc net.Conn) {
	if !handshake(t, nc) {
		return
	}
	typ, payload, err := wire.ReadFrame(nc)
	if err != nil || typ != wire.MsgFragment {
		return
	}
	if m, err := wire.DecodeFragment(payload); err != nil || m.Agg == nil {
		return
	}
	bad := wire.Partial{Groups: []types.Row{{types.NewInt(1), types.NewInt(2)}}}
	if wire.WriteFrame(nc, wire.MsgPartial, bad.Encode(nil)) != nil {
		return
	}
	_ = wire.WriteFrame(nc, wire.MsgEOS, wire.EOS{Rows: 1}.Encode(nil))
	serveN(nc, 1)
}

func TestMalformedPartialBreaksConn(t *testing.T) {
	// A partial-state group that fails exec.DecodePartial is a server-side
	// protocol violation: the fetch must surface a non-retryable error
	// through the fragment's error sink, and the connection — which is
	// positionally intact but no longer trusted — must not return to the
	// pool. The follow-up query has to dial fresh.
	f := startFake(t, malformedPartial, serveQueries(1))
	r, reg := connect(t, f, Options{})

	schema := []types.Column{{Name: "g", Type: types.Int}, {Name: "v", Type: types.Float}}
	fs := r.Fragment(context.Background(), "acct", schema, nil)
	var sinkErr error
	fs.OnError(func(err error) { sinkErr = err })
	ps := fs.PushAgg([]string{"g"}, []exec.Agg{{Kind: exec.Sum, Expr: exec.ColName("v"), Name: "s"}})
	if ps == nil {
		t.Fatal("PushAgg declined a pushable aggregation")
	}
	if g := ps.NextPartial(); g != nil {
		t.Fatalf("malformed partial stream produced a group: %+v", g)
	}
	if sinkErr == nil {
		t.Fatal("malformed partial surfaced no error")
	}
	if retries(reg) != 0 {
		t.Fatalf("protocol violation was retried %d times; must fail fast", retries(reg))
	}

	rows, err := r.RunCH(context.Background(), 1)
	if err != nil {
		t.Fatalf("RunCH after malformed partial: %v", err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 42 {
		t.Fatalf("rows = %v", rows)
	}
	if dials := reg.Counter("htap_client_dials_total", nil).Value(); dials != 2 {
		t.Fatalf("dials = %d, want 2 (malformed-partial conn discarded, fresh dial)", dials)
	}
}
