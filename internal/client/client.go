// Package client is the wire protocol's client side: a connection pool
// with per-request deadlines, retry with jittered exponential backoff on
// retryable errors only, and a Remote engine that satisfies the same
// benchmark-facing surface as an in-process core.Engine — the CH driver
// and htapbench harness run unchanged against a server across the
// network.
//
// Cancellation is physical: cancelling a request's context closes the
// underlying connection, which the server's read watchdog observes and
// converts into scan cancellation mid-batch. The broken connection is
// discarded, not pooled.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/obs"
	"htap/internal/types"
	"htap/internal/wire"
)

// TransportError wraps connection-level failures (dial refused, reset,
// EOF mid-frame). It is retryable: the pool dials a fresh connection and
// the request — or for transaction ops, core.Exec's whole-transaction
// loop — tries again.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string { return "client: transport: " + e.Err.Error() }

// Unwrap exposes the underlying network error.
func (e *TransportError) Unwrap() error { return e.Err }

// Retryable marks transport failures safe to retry.
func (e *TransportError) Retryable() bool { return true }

// CommitIndeterminateError reports a commit whose outcome is unknown: the
// connection (or deadline) died after MsgCommit may have reached the
// server, so the transaction may or may not have applied. It is
// deliberately non-retryable — re-running the transaction through
// core.Exec could apply it twice.
type CommitIndeterminateError struct {
	Err error
}

func (e *CommitIndeterminateError) Error() string {
	return "client: commit outcome unknown: " + e.Err.Error()
}

// Unwrap exposes the underlying failure (transport or context error).
func (e *CommitIndeterminateError) Unwrap() error { return e.Err }

// Retryable is always false: the commit may already be applied.
func (e *CommitIndeterminateError) Retryable() bool { return false }

// Options tunes the client.
type Options struct {
	// PoolSize caps idle pooled connections (default 8).
	PoolSize int
	// Retries is the retry budget per request (default 4 attempts after
	// the first).
	Retries int
	// Backoff is the first retry delay (default 2ms), doubling per
	// attempt with ±50% jitter up to MaxBackoff (default 100ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed makes the jitter deterministic in tests; 0 seeds from 1.
	Seed int64
	// Reg receives the htap_client_* series; nil uses obs.Default.
	Reg *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.PoolSize == 0 {
		o.PoolSize = 8
	}
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.Backoff == 0 {
		o.Backoff = 2 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Reg == nil {
		o.Reg = obs.Default
	}
	return o
}

// conn is one established, handshaken connection. broken is atomic
// because the context watcher (watchCtx) sets it from its own goroutine.
type conn struct {
	nc     net.Conn
	hello  wire.ServerHello
	broken atomic.Bool
}

// Remote is a network-backed engine. It implements the ch.Engine and
// htapbench.Engine surfaces (Begin/Query/Arch/Sync/Freshness) plus a
// server-side CH query path, so benchmark code cannot tell it from a
// local engine.
type Remote struct {
	addr  string
	opt   Options
	rng   *rand.Rand // jitter; guarded by rngMu
	rngMu sync.Mutex

	mu     sync.Mutex
	idle   []*conn
	closed bool

	arch core.Arch
	meta map[string]int64

	mReq     map[string]*obs.Counter
	mRetries map[string]*obs.Counter
	mLatNS   map[string]*obs.Histogram
	mDials   *obs.Counter
	mConnErr *obs.Counter
}

// Connect dials addr, performs the handshake, and returns a Remote
// engine. The handshake connection is pooled for reuse.
func Connect(ctx context.Context, addr string, opt Options) (*Remote, error) {
	opt = opt.withDefaults()
	r := &Remote{
		addr:     addr,
		opt:      opt,
		rng:      rand.New(rand.NewSource(opt.Seed)),
		mReq:     map[string]*obs.Counter{},
		mRetries: map[string]*obs.Counter{},
		mLatNS:   map[string]*obs.Histogram{},
		mDials:   opt.Reg.Counter("htap_client_dials_total", nil),
		mConnErr: opt.Reg.Counter("htap_client_conn_errors_total", nil),
	}
	for _, class := range []string{wire.ClassOLTP, wire.ClassOLAP} {
		lbl := obs.L("class", class)
		r.mReq[class] = opt.Reg.Counter("htap_client_requests_total", lbl)
		r.mRetries[class] = opt.Reg.Counter("htap_client_retries_total", lbl)
		r.mLatNS[class] = opt.Reg.Histogram("htap_client_request_ns", lbl)
	}
	c, err := r.dial(ctx)
	if err != nil {
		return nil, err
	}
	r.arch = core.Arch(c.hello.Arch)
	r.meta = c.hello.Meta
	r.put(c)
	return r, nil
}

// Arch reports the served engine's architecture.
func (r *Remote) Arch() core.Arch { return r.arch }

// Meta returns the server's handshake metadata (dataset scale,
// history-key watermark).
func (r *Remote) Meta() map[string]int64 { return r.meta }

// Close discards all pooled connections.
func (r *Remote) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, c := range r.idle {
		_ = c.nc.Close()
	}
	r.idle = nil
}

func (r *Remote) dial(ctx context.Context) (*conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", r.addr)
	if err != nil {
		r.mConnErr.Inc()
		return nil, &TransportError{Err: err}
	}
	r.mDials.Inc()
	c := &conn{nc: nc}
	if err := wire.WriteFrame(nc, wire.MsgHello, wire.Hello{Version: wire.Version}.Encode(nil)); err != nil {
		_ = nc.Close()
		r.mConnErr.Inc()
		return nil, &TransportError{Err: err}
	}
	typ, payload, err := wire.ReadFrame(nc)
	if err != nil {
		_ = nc.Close()
		r.mConnErr.Inc()
		return nil, &TransportError{Err: err}
	}
	switch typ {
	case wire.MsgServerHello:
		h, err := wire.DecodeServerHello(payload)
		if err != nil {
			_ = nc.Close()
			return nil, err
		}
		c.hello = h
		return c, nil
	case wire.MsgError:
		_ = nc.Close()
		return nil, wire.DecodeError(payload)
	default:
		_ = nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame %d", typ)
	}
}

// get returns a pooled or fresh connection.
func (r *Remote) get(ctx context.Context) (*conn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("client: closed")
	}
	if n := len(r.idle); n > 0 {
		c := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	return r.dial(ctx)
}

// put returns a healthy connection to the pool and closes broken or
// surplus ones.
func (r *Remote) put(c *conn) {
	if c == nil {
		return
	}
	if c.broken.Load() {
		_ = c.nc.Close()
		return
	}
	r.mu.Lock()
	if r.closed || len(r.idle) >= r.opt.PoolSize {
		r.mu.Unlock()
		_ = c.nc.Close()
		return
	}
	r.idle = append(r.idle, c)
	r.mu.Unlock()
}

// roundTrip sends one request frame and reads the response, honouring
// ctx: cancellation closes the connection, which both unblocks local I/O
// and tells the server to stop working on the request.
func (c *conn) roundTrip(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	stop := watchCtx(ctx, c)
	defer stop()
	if err := wire.WriteFrame(c.nc, typ, payload); err != nil {
		c.broken.Store(true)
		return 0, nil, ctxOrTransport(ctx, err)
	}
	rt, resp, err := wire.ReadFrame(c.nc)
	if err != nil {
		c.broken.Store(true)
		return 0, nil, ctxOrTransport(ctx, err)
	}
	return rt, resp, nil
}

// readFrame reads a follow-up stream frame under the same ctx discipline.
func (c *conn) readFrame(ctx context.Context) (byte, []byte, error) {
	stop := watchCtx(ctx, c)
	defer stop()
	rt, resp, err := wire.ReadFrame(c.nc)
	if err != nil {
		c.broken.Store(true)
		return 0, nil, ctxOrTransport(ctx, err)
	}
	return rt, resp, nil
}

// watchCtx closes the connection when ctx ends before stop is called.
// Closing is the cancellation signal: the server's watchdog sees EOF and
// abandons the scan. stop waits for the watcher goroutine to exit
// (mirroring server.watch) so a cancellation that races a completed
// response cannot mark the conn broken or close it after it has been
// returned to the pool — and possibly handed to another request.
func watchCtx(ctx context.Context, c *conn) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			c.broken.Store(true)
			_ = c.nc.Close()
		case <-done:
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// ctxOrTransport prefers the context error when the failure was caused
// by our own cancellation close.
func ctxOrTransport(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return &TransportError{Err: err}
}

// retryable reports whether a request-level failure is worth a fresh
// attempt: transport failures and self-declared retryable wire errors
// (conflict, overloaded, shutdown). Context errors never retry.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// do runs fn with a connection, retrying retryable failures with
// jittered exponential backoff. fn must be idempotent — queries, sync,
// freshness; transaction ops go through Begin's pinned connection and
// rely on core.Exec for whole-transaction retry instead.
//
// When ctx carries a span, every attempt gets its own child span (sp to
// fn; nil when untraced) whose IDs ride the request frame — so one trace
// holds every retry of a flaky request, each linked to the server-side
// span it produced on the far end.
func (r *Remote) do(ctx context.Context, class string, fn func(*conn, *obs.Span) error) error {
	start := time.Now()
	defer func() { r.mLatNS[class].Since(start) }()
	parent := obs.SpanFromContext(ctx)
	delay := r.opt.Backoff
	var err error
	for attempt := 0; attempt <= r.opt.Retries; attempt++ {
		if attempt > 0 {
			r.mRetries[class].Inc()
			if serr := r.sleep(ctx, r.jitter(delay)); serr != nil {
				return serr
			}
			if delay *= 2; delay > r.opt.MaxBackoff {
				delay = r.opt.MaxBackoff
			}
		}
		var c *conn
		c, err = r.get(ctx)
		if err == nil {
			r.mReq[class].Inc()
			var sp *obs.Span
			if parent != nil {
				sp = parent.Child("client.attempt").AttrInt("attempt", int64(attempt))
			}
			err = fn(c, sp)
			if sp != nil {
				sp.End()
			}
			r.put(c)
		}
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
	}
	return fmt.Errorf("client: gave up after %d attempts: %w", r.opt.Retries+1, err)
}

// jitter spreads a delay to 50–150% so synchronized retries desynchronize.
func (r *Remote) jitter(d time.Duration) time.Duration {
	r.rngMu.Lock()
	f := 0.5 + r.rng.Float64()
	r.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

func (r *Remote) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deadlineOf extracts ctx's absolute deadline for the wire (0 = none).
func deadlineOf(ctx context.Context) int64 {
	if dl, ok := ctx.Deadline(); ok {
		return dl.UnixNano()
	}
	return 0
}

// expectOK consumes a response that should be MsgOK.
func expectOK(typ byte, payload []byte) error {
	switch typ {
	case wire.MsgOK:
		return nil
	case wire.MsgError:
		return wire.DecodeError(payload)
	default:
		return fmt.Errorf("client: unexpected frame %d", typ)
	}
}

// readStream consumes a schema + batches + EOS stream. A decode or
// protocol failure abandons the stream with Batch/EOS frames possibly
// still in flight, so those paths mark the connection broken — pooling
// it would feed the stale frames to the next request. Server-sent
// MsgError frames terminate the stream cleanly and leave the connection
// reusable.
func readStream(ctx context.Context, c *conn, typ byte, payload []byte) ([]types.Column, []types.Row, wire.EOS, error) {
	fail := func(err error) ([]types.Column, []types.Row, wire.EOS, error) {
		c.broken.Store(true)
		return nil, nil, wire.EOS{}, err
	}
	if typ == wire.MsgError {
		return nil, nil, wire.EOS{}, wire.DecodeError(payload)
	}
	if typ != wire.MsgSchema {
		return fail(fmt.Errorf("client: expected schema frame, got %d", typ))
	}
	sch, err := wire.DecodeSchema(payload)
	if err != nil {
		return fail(err)
	}
	var rows []types.Row
	for {
		typ, payload, err := c.readFrame(ctx)
		if err != nil {
			return nil, nil, wire.EOS{}, err // readFrame already marked the conn broken
		}
		switch typ {
		case wire.MsgBatch:
			b, err := wire.DecodeBatch(payload)
			if err != nil {
				return fail(err)
			}
			rows = append(rows, b.Rows...)
		case wire.MsgEOS:
			eos, err := wire.DecodeEOS(payload)
			if err != nil {
				return fail(err)
			}
			if int64(len(rows)) != eos.Rows {
				return fail(fmt.Errorf("client: stream lost rows: got %d, server sent %d", len(rows), eos.Rows))
			}
			return sch.Cols, rows, eos, nil
		case wire.MsgError:
			return nil, nil, wire.EOS{}, wire.DecodeError(payload)
		default:
			return fail(fmt.Errorf("client: unexpected stream frame %d", typ))
		}
	}
}

// readPartialStream consumes a pushed-aggregation reply: MsgPartial
// frames carrying encoded group states, terminated by MsgEOS whose Rows
// trailer counts groups. The broken-connection discipline mirrors
// readStream — decode/protocol failures abandon frames in flight and
// poison the conn; a server MsgError terminates cleanly.
func readPartialStream(ctx context.Context, c *conn, typ byte, payload []byte) ([]types.Row, wire.EOS, error) {
	fail := func(err error) ([]types.Row, wire.EOS, error) {
		c.broken.Store(true)
		return nil, wire.EOS{}, err
	}
	var groups []types.Row
	for {
		switch typ {
		case wire.MsgPartial:
			p, err := wire.DecodePartial(payload)
			if err != nil {
				return fail(err)
			}
			groups = append(groups, p.Groups...)
		case wire.MsgEOS:
			eos, err := wire.DecodeEOS(payload)
			if err != nil {
				return fail(err)
			}
			if int64(len(groups)) != eos.Rows {
				return fail(fmt.Errorf("client: partial stream lost groups: got %d, server sent %d", len(groups), eos.Rows))
			}
			return groups, eos, nil
		case wire.MsgError:
			return nil, wire.EOS{}, wire.DecodeError(payload)
		default:
			return fail(fmt.Errorf("client: unexpected partial-stream frame %d", typ))
		}
		var err error
		typ, payload, err = c.readFrame(ctx)
		if err != nil {
			return nil, wire.EOS{}, err // readFrame already marked the conn broken
		}
	}
}

// Rebalance asks the server's coordinator engine to move warehouses
// [lo, hi] to shard dest, returning rows moved and the new routing
// version. The request deliberately bypasses the do() retry loop: a
// move is not idempotent under transport error — the first attempt may
// have cut over before the acknowledgement was lost — so a failure is
// reported to the operator instead of silently re-issued.
func (r *Remote) Rebalance(ctx context.Context, lo, hi, dest int) (int64, int64, error) {
	m := wire.Rebalance{Deadline: deadlineOf(ctx), Lo: int64(lo), Hi: int64(hi), Dest: int64(dest)}
	c, err := r.get(ctx)
	if err != nil {
		return 0, 0, err
	}
	defer r.put(c)
	typ, payload, err := c.roundTrip(ctx, wire.MsgRebalance, m.Encode(nil))
	if err != nil {
		return 0, 0, err
	}
	switch typ {
	case wire.MsgRebalanceInfo:
		info, err := wire.DecodeRebalanceInfo(payload)
		if err != nil {
			c.broken.Store(true)
			return 0, 0, err
		}
		return info.Moved, info.Version, nil
	case wire.MsgError:
		return 0, 0, wire.DecodeError(payload)
	default:
		c.broken.Store(true)
		return 0, 0, fmt.Errorf("client: unexpected frame %d", typ)
	}
}

// adoptRemoteProfile merges a profiled EOS trailer into the profile the
// caller's context carries (if any) — the client-side half of remote
// EXPLAIN ANALYZE.
func adoptRemoteProfile(ctx context.Context, eos wire.EOS) {
	if !eos.HasProfile {
		return
	}
	if prof := exec.ProfileFrom(ctx); prof != nil {
		prof.AddRemote(eos.Profile, eos.ExecNS, eos.AdmitNS, eos.SpillNS)
	}
}

// Query satisfies the engine Query surface by materializing a remote
// table scan into an exec plan. Cancellation aborts the stream and the
// server-side scan.
func (r *Remote) Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan {
	m := wire.Scan{Deadline: deadlineOf(ctx), Table: table, Cols: cols}
	if pred != nil {
		m.HasPred, m.PredCol, m.PredLo, m.PredHi = true, pred.Col, pred.Lo, pred.Hi
	}
	m.Profile = exec.ProfileFrom(ctx) != nil
	var sch []types.Column
	var rows []types.Row
	err := r.do(ctx, wire.ClassOLAP, func(c *conn, sp *obs.Span) error {
		if sp != nil {
			m.TraceID, m.SpanID = sp.TraceID(), sp.SpanID()
		}
		typ, payload, err := c.roundTrip(ctx, wire.MsgScan, m.Encode(nil))
		if err != nil {
			return err
		}
		var eos wire.EOS
		sch, rows, eos, err = readStream(ctx, c, typ, payload)
		if err == nil {
			adoptRemoteProfile(ctx, eos)
		}
		return err
	})
	if err != nil {
		// Carry the failure on the plan: running it yields the error, and
		// ch.RunQuery reports it, so a failed scan is never mistaken for
		// an empty table.
		return exec.FromError(err)
	}
	return exec.From(exec.NewMemSource(sch, rows))
}

// RunCH runs CH query n server-side and returns its rows. htapbench
// prefers this over client-side query assembly when the engine provides
// it: one round trip carries only the (small, aggregated) result set.
func (r *Remote) RunCH(ctx context.Context, n int) ([]types.Row, error) {
	m := wire.Query{Deadline: deadlineOf(ctx), N: uint32(n), Profile: exec.ProfileFrom(ctx) != nil}
	var rows []types.Row
	err := r.do(ctx, wire.ClassOLAP, func(c *conn, sp *obs.Span) error {
		if sp != nil {
			m.TraceID, m.SpanID = sp.TraceID(), sp.SpanID()
		}
		typ, payload, err := c.roundTrip(ctx, wire.MsgQuery, m.Encode(nil))
		if err != nil {
			return err
		}
		var eos wire.EOS
		_, rows, eos, err = readStream(ctx, c, typ, payload)
		if err == nil {
			adoptRemoteProfile(ctx, eos)
		}
		return err
	})
	return rows, err
}

// Sync forces a server-side data-synchronization round.
func (r *Remote) Sync() {
	_ = r.do(context.Background(), wire.ClassOLAP, func(c *conn, _ *obs.Span) error {
		typ, payload, err := c.roundTrip(context.Background(), wire.MsgSync, nil)
		if err != nil {
			return err
		}
		return expectOK(typ, payload)
	})
}

// Freshness reports the server's OLTP-vs-OLAP watermark gap.
func (r *Remote) Freshness() freshness.Snapshot {
	var snap freshness.Snapshot
	_ = r.do(context.Background(), wire.ClassOLAP, func(c *conn, _ *obs.Span) error {
		typ, payload, err := c.roundTrip(context.Background(), wire.MsgFreshness, nil)
		if err != nil {
			return err
		}
		if typ == wire.MsgError {
			return wire.DecodeError(payload)
		}
		if typ != wire.MsgFreshnessInfo {
			return fmt.Errorf("client: unexpected frame %d", typ)
		}
		f, err := wire.DecodeFreshness(payload)
		if err != nil {
			return err
		}
		snap = freshness.Snapshot{
			CommitTS: f.CommitTS, AppliedTS: f.AppliedTS,
			LagTS: f.LagTS, LagTime: time.Duration(f.LagNS),
		}
		return nil
	})
	return snap
}

// Begin starts a remote transaction pinned to one connection. A failed
// begin (overload, drain, transport) returns a stub transaction whose
// operations all report the failure — core.Tx has no error return, and
// core.Exec's retry loop picks the error up from the first operation.
func (r *Remote) Begin(ctx context.Context) core.Tx {
	c, err := r.get(ctx)
	if err != nil {
		return &failedTx{err: err}
	}
	b := wire.Begin{Deadline: deadlineOf(ctx)}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		b.TraceID, b.SpanID = sp.TraceID(), sp.SpanID()
	}
	typ, payload, err := c.roundTrip(ctx, wire.MsgBegin, b.Encode(nil))
	if err == nil {
		err = expectOK(typ, payload)
	}
	if err != nil {
		r.put(c)
		return &failedTx{err: err}
	}
	r.mReq[wire.ClassOLTP].Inc()
	return &remoteTx{r: r, c: c, ctx: ctx, start: time.Now()}
}

// failedTx reports a begin-time failure from every operation.
type failedTx struct{ err error }

func (t *failedTx) Get(string, int64) (types.Row, error) { return nil, t.err }
func (t *failedTx) Insert(string, types.Row) error       { return t.err }
func (t *failedTx) Update(string, types.Row) error       { return t.err }
func (t *failedTx) Delete(string, int64) error           { return t.err }
func (t *failedTx) Commit() error                        { return t.err }
func (t *failedTx) Abort()                               {}

// remoteTx speaks the transaction ops over its pinned connection.
type remoteTx struct {
	r     *Remote
	c     *conn
	ctx   context.Context
	start time.Time
	done  bool
}

// finish returns the connection to the pool once.
func (t *remoteTx) finish() {
	if t.done {
		return
	}
	t.done = true
	t.r.mLatNS[wire.ClassOLTP].Since(t.start)
	t.r.put(t.c)
	t.c = nil
}

func (t *remoteTx) op(typ byte, payload []byte) (byte, []byte, error) {
	if t.done {
		return 0, nil, errors.New("client: transaction finished")
	}
	rt, resp, err := t.c.roundTrip(t.ctx, typ, payload)
	if err != nil {
		// Transport failure mid-transaction: the server aborts on
		// disconnect; release the broken conn now.
		t.finish()
	}
	return rt, resp, err
}

func (t *remoteTx) Get(table string, key int64) (types.Row, error) {
	typ, payload, err := t.op(wire.MsgGet, wire.KeyReq{Table: table, Key: key}.Encode(nil))
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.MsgRow:
		b, err := wire.DecodeBatch(payload)
		if err != nil || len(b.Rows) != 1 {
			return nil, fmt.Errorf("client: bad row frame: %v", err)
		}
		return b.Rows[0], nil
	case wire.MsgError:
		we := wire.DecodeError(payload)
		if we.Code == wire.CodeNotFound {
			return nil, core.ErrNotFound
		}
		return nil, we
	default:
		return nil, fmt.Errorf("client: unexpected frame %d", typ)
	}
}

func (t *remoteTx) write(typ byte, payload []byte) error {
	rt, resp, err := t.op(typ, payload)
	if err != nil {
		return err
	}
	return expectOK(rt, resp)
}

func (t *remoteTx) Insert(table string, row types.Row) error {
	return t.write(wire.MsgInsert, wire.RowReq{Table: table, Row: row}.Encode(nil))
}

func (t *remoteTx) Update(table string, row types.Row) error {
	return t.write(wire.MsgUpdate, wire.RowReq{Table: table, Row: row}.Encode(nil))
}

func (t *remoteTx) Delete(table string, key int64) error {
	return t.write(wire.MsgDelete, wire.KeyReq{Table: table, Key: key}.Encode(nil))
}

// Prepare votes on the transaction — phase one of a cross-shard commit.
// The server validated locks and snapshots as each write arrived, so a nil
// return promises the later Commit cannot fail validation; it can only
// fail indeterminately (transport). A transport failure here is safe: the
// server aborts on disconnect and nothing committed anywhere yet.
func (t *remoteTx) Prepare() error {
	m := wire.Prepare{Deadline: deadlineOf(t.ctx)}
	if sp := obs.SpanFromContext(t.ctx); sp != nil {
		m.TraceID, m.SpanID = sp.TraceID(), sp.SpanID()
	}
	typ, payload, err := t.op(wire.MsgPrepare, m.Encode(nil))
	if err != nil {
		return err
	}
	return expectOK(typ, payload)
}

func (t *remoteTx) Commit() error {
	if t.done {
		return errors.New("client: transaction finished")
	}
	typ, payload, err := t.c.roundTrip(t.ctx, wire.MsgCommit, nil)
	t.finish()
	if err != nil {
		// The connection died between sending MsgCommit and reading the
		// response: the server may already have applied the commit, so
		// the outcome is indeterminate and the error must not be
		// retryable — core.Exec re-running the transaction would
		// double-apply it.
		return &CommitIndeterminateError{Err: err}
	}
	return expectOK(typ, payload)
}

func (t *remoteTx) Abort() {
	if t.done {
		return
	}
	typ, payload, err := t.c.roundTrip(t.ctx, wire.MsgAbort, nil)
	t.finish()
	if err == nil {
		_ = expectOK(typ, payload)
	}
}
