// Package htapbench implements the mixed-workload execution rules and
// metrics of the paper's §2.3.
//
// Two end-to-end execution rules are provided:
//
//   - CH-benCHmark rule (Run with TargetTpmC == 0): OLTP workers and OLAP
//     streams run unthrottled side by side; the benchmark reports both
//     tpmC (New-Order transactions per minute) and QphH (analytical
//     queries per hour), plus freshness samples.
//   - HTAPBench rule (TargetTpmC > 0): the OLTP side is paced to a fixed
//     transaction rate and the metric of interest is the QphH the system
//     sustains at that guaranteed OLTP service level — HTAPBench's
//     "business value under a transactional SLA" idea.
//
// The isolation/freshness evaluation practice of §2.3(2) is covered by
// RunIsolationProbe, which measures OLTP degradation caused by turning the
// OLAP side on.
package htapbench

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/ch"
	"htap/internal/core"
)

// Config parameterizes a mixed run.
type Config struct {
	Engine    core.Engine
	Scale     ch.Scale
	TPWorkers int
	APStreams int
	Duration  time.Duration
	// QuerySet lists the CH query numbers the AP streams cycle through
	// (nil = all 22).
	QuerySet []int
	// TargetTpmC, when positive, paces the OLTP side (HTAPBench rule).
	TargetTpmC float64
	// SyncInterval runs engine.Sync in the background (0 = none).
	SyncInterval time.Duration
	Seed         int64
}

// Result reports the metrics of one run.
type Result struct {
	Elapsed time.Duration

	Txns     int64
	NewOrder int64
	TpmC     float64 // New-Order transactions per minute
	TPS      float64 // all transactions per second

	Queries int64
	QphH    float64 // analytical queries per hour

	TxnErrors int64

	AvgTxnLatency   time.Duration
	AvgQueryLatency time.Duration

	// Freshness samples (staleness of the analytical view).
	FreshAvgLagTS   float64
	FreshMaxLagTS   uint64
	FreshAvgLagTime time.Duration
	FreshMaxLagTime time.Duration
}

// Run executes the mixed workload and reports metrics.
func Run(cfg Config) Result {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	driver := ch.NewDriver(cfg.Engine, cfg.Scale)
	queries := pickQueries(cfg.QuerySet)

	var (
		stop       atomic.Bool
		txnErrs    atomic.Int64
		txnNanos   atomic.Int64
		queryCount atomic.Int64
		queryNanos atomic.Int64
		wg         sync.WaitGroup
	)

	// Pacing for the HTAPBench rule: a token bucket at TargetTpmC/60 tps.
	var tokens chan struct{}
	if cfg.TargetTpmC > 0 {
		tokens = make(chan struct{}, 64)
		interval := time.Duration(float64(time.Minute) / cfg.TargetTpmC)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for !stop.Load() {
				<-tick.C
				select {
				case tokens <- struct{}{}:
				default:
				}
			}
		}()
	}

	for w := 0; w < cfg.TPWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + seed))
			for !stop.Load() {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Millisecond):
						continue
					}
				}
				start := time.Now()
				if err := driver.RunOne(rng); err != nil {
					txnErrs.Add(1)
				} else {
					txnNanos.Add(int64(time.Since(start)))
				}
			}
		}(int64(w))
	}

	for s := 0; s < cfg.APStreams; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*7777 + seed))
			for !stop.Load() {
				q := queries[rng.Intn(len(queries))]
				start := time.Now()
				q(cfg.Engine)
				queryNanos.Add(int64(time.Since(start)))
				queryCount.Add(1)
			}
		}(int64(s))
	}

	if cfg.SyncInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.SyncInterval)
			defer t.Stop()
			for !stop.Load() {
				<-t.C
				cfg.Engine.Sync()
			}
		}()
	}

	// Freshness sampler.
	var lagSumTS, lagSamples uint64
	var lagMaxTS uint64
	var lagSumTime, lagMaxTime time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for !stop.Load() {
			<-t.C
			s := cfg.Engine.Freshness()
			lagSumTS += s.LagTS
			lagSamples++
			if s.LagTS > lagMaxTS {
				lagMaxTS = s.LagTS
			}
			lagSumTime += s.LagTime
			if s.LagTime > lagMaxTime {
				lagMaxTime = s.LagTime
			}
		}
	}()

	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	counts := driver.Counts()
	total := int64(0)
	for _, n := range counts {
		total += n
	}
	res := Result{
		Elapsed:   elapsed,
		Txns:      total,
		NewOrder:  driver.NewOrders(),
		Queries:   queryCount.Load(),
		TxnErrors: txnErrs.Load(),
	}
	mins := elapsed.Minutes()
	res.TpmC = float64(res.NewOrder) / mins
	res.TPS = float64(res.Txns) / elapsed.Seconds()
	res.QphH = float64(res.Queries) / elapsed.Hours()
	if res.Txns > 0 {
		res.AvgTxnLatency = time.Duration(txnNanos.Load() / max64(res.Txns, 1))
	}
	if res.Queries > 0 {
		res.AvgQueryLatency = time.Duration(queryNanos.Load() / res.Queries)
	}
	if lagSamples > 0 {
		res.FreshAvgLagTS = float64(lagSumTS) / float64(lagSamples)
		res.FreshAvgLagTime = lagSumTime / time.Duration(lagSamples)
	}
	res.FreshMaxLagTS = lagMaxTS
	res.FreshMaxLagTime = lagMaxTime
	return res
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func pickQueries(set []int) []ch.QueryFunc {
	all := ch.Queries()
	if len(set) == 0 {
		out := make([]ch.QueryFunc, 0, len(all))
		for i := 1; i <= 22; i++ {
			out = append(out, all[i])
		}
		return out
	}
	out := make([]ch.QueryFunc, 0, len(set))
	for _, i := range set {
		if q, ok := all[i]; ok {
			out = append(out, q)
		}
	}
	return out
}

// IsolationProbe quantifies workload interference (§2.3(2)): run OLTP
// alone, then OLTP with the OLAP side on, and report the degradation.
type IsolationProbe struct {
	BaselineTPS float64
	MixedTPS    float64
	// DegradationPct is the share of OLTP throughput lost to OLAP
	// co-execution: the paper's "what percentage of performance
	// degradation the systems should pay".
	DegradationPct float64
}

// RunIsolationProbe measures OLTP throughput with and without AP streams.
func RunIsolationProbe(cfg Config) IsolationProbe {
	alone := cfg
	alone.APStreams = 0
	a := Run(alone)
	m := Run(cfg)
	p := IsolationProbe{BaselineTPS: a.TPS, MixedTPS: m.TPS}
	if a.TPS > 0 {
		p.DegradationPct = 100 * (a.TPS - m.TPS) / a.TPS
	}
	return p
}
