// Package htapbench implements the mixed-workload execution rules and
// metrics of the paper's §2.3.
//
// Two end-to-end execution rules are provided:
//
//   - CH-benCHmark rule (Run with TargetTpmC == 0): OLTP workers and OLAP
//     streams run unthrottled side by side; the benchmark reports both
//     tpmC (New-Order transactions per minute) and QphH (analytical
//     queries per hour), plus freshness samples.
//   - HTAPBench rule (TargetTpmC > 0): the OLTP side is paced to a fixed
//     transaction rate and the metric of interest is the QphH the system
//     sustains at that guaranteed OLTP service level — HTAPBench's
//     "business value under a transactional SLA" idea.
//
// The isolation/freshness evaluation practice of §2.3(2) is covered by
// RunIsolationProbe, which measures OLTP degradation caused by turning the
// OLAP side on.
package htapbench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/freshness"
	"htap/internal/obs"
	"htap/internal/types"
)

// Engine is what a mixed run drives: the CH workload surface plus the
// sync and freshness hooks the harness samples. core.Engine satisfies it;
// so does the network client's remote engine, which is how cmd/chbench
// -remote reuses this harness unchanged over the wire.
type Engine interface {
	ch.Engine
	Arch() core.Arch
	Query(ctx context.Context, table string, cols []string, pred *exec.ScanPred) *exec.Plan
	Sync()
	Freshness() freshness.Snapshot
}

// CHRunner is an optional Engine refinement: execute CH query n where the
// data lives and return only the result rows. The network client provides
// it so AP streams ship one small aggregated result per query instead of
// pulling whole tables through client-side joins.
type CHRunner interface {
	RunCH(ctx context.Context, n int) ([]types.Row, error)
}

// Config parameterizes a mixed run.
type Config struct {
	Engine    Engine
	Scale     ch.Scale
	TPWorkers int
	APStreams int
	Duration  time.Duration
	// QuerySet lists the CH query numbers the AP streams cycle through
	// (nil = all 22).
	QuerySet []int
	// TargetTpmC, when positive, paces the OLTP side (HTAPBench rule).
	TargetTpmC float64
	// SyncInterval runs engine.Sync in the background (0 = none).
	SyncInterval time.Duration
	Seed         int64
	// Profile enables per-query profiling on the AP streams: every
	// analytical query runs under a root trace span and an EXPLAIN
	// ANALYZE profile (propagated over the wire in remote mode), feeding
	// Result.QueryBreakdown and the Slowest* fields. The OLTP side is
	// never profiled — the wrappers would be pure overhead on point
	// transactions.
	Profile bool
	// Ctx, when non-nil, bounds the whole run: cancelling it stops the
	// workers early, and in-flight queries abandon their scans.
	Ctx context.Context
}

// Result reports the metrics of one run.
type Result struct {
	Elapsed time.Duration

	Txns     int64
	NewOrder int64
	TpmC     float64 // New-Order transactions per minute
	TPS      float64 // all transactions per second

	Queries int64
	QphH    float64 // analytical queries per hour

	TxnErrors int64
	// QueryErrors counts AP queries that failed or were shed; they are
	// excluded from Queries, QphH, and the latency histograms.
	QueryErrors int64

	AvgTxnLatency   time.Duration
	AvgQueryLatency time.Duration

	// Per-class latency distributions: one entry per TPC-C transaction
	// class that ran and one per CH query (Q1..Q22) in the query set.
	TxnClasses   []ClassLatency
	QueryClasses []ClassLatency

	// Freshness samples (staleness of the analytical view).
	FreshAvgLagTS   float64
	FreshMaxLagTS   uint64
	FreshAvgLagTime time.Duration
	FreshMaxLagTime time.Duration

	// Late-materialization accounting across the run: rows the pushed-down
	// scans considered versus rows they decoded (deltas of the process-wide
	// htap_exec_pushdown_* counters, see DESIGN.md "Late materialization &
	// predicate pushdown"). RowsMaterializedPerQuery averages the decoded
	// rows over the successful analytical queries. All three stay zero in
	// remote mode, where queries execute in the server process.
	PushdownScannedRows      int64
	PushdownMaterializedRows int64
	RowsMaterializedPerQuery float64

	// QueryBreakdown attributes each query class's tail latency to
	// admission wait, execution, and spill I/O (Profile mode only). The
	// three p99s come from separate histograms, so they need not sum to
	// the end-to-end class p99.
	QueryBreakdown []ClassBreakdown
	// Slowest* describe the single slowest successful profiled query:
	// its class, duration, and rendered EXPLAIN ANALYZE tree.
	SlowestClass   string
	SlowestDur     time.Duration
	SlowestProfile string
}

// ClassBreakdown is the attributed latency split of one query class.
type ClassBreakdown struct {
	Class    string
	Count    int64
	AdmitP99 time.Duration
	ExecP99  time.Duration
	SpillP99 time.Duration
}

// ClassLatency is the latency distribution of one workload class within a
// run (percentiles are histogram estimates, ~3% relative error).
type ClassLatency struct {
	Class string
	Count int64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// classHist records one class's latencies twice: into a run-local histogram
// (the Result percentiles must cover this run only) and into the registered
// htap_bench_* series (cumulative across runs, scraped via -metrics).
type classHist struct {
	local *obs.Histogram
	reg   *obs.Histogram
}

func newClassHist(metric, arch, class string) *classHist {
	return &classHist{
		local: obs.NewHistogram(),
		reg:   obs.Default.Histogram(metric, obs.L("arch", arch, "class", class)),
	}
}

func (c *classHist) observe(d time.Duration) {
	c.local.ObserveDuration(d)
	c.reg.ObserveDuration(d)
}

func (c *classHist) latency(class string) ClassLatency {
	qs := c.local.Quantiles(0.5, 0.95, 0.99)
	return ClassLatency{
		Class: class, Count: int64(c.local.Count()),
		P50: time.Duration(qs[0]), P95: time.Duration(qs[1]), P99: time.Duration(qs[2]),
	}
}

// Run executes the mixed workload and reports metrics.
func Run(cfg Config) Result {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	root := cfg.Ctx
	if root == nil {
		root = context.Background()
	}
	// The run context is cancelled when the measurement window closes, so
	// in-flight transactions and queries stop scanning instead of
	// overrunning the window.
	ctx, cancel := context.WithCancel(root)
	defer cancel()
	driver := ch.NewDriver(cfg.Engine, cfg.Scale)
	queries := pickQueries(cfg.QuerySet)

	// Per-class histograms, keyed by TPC-C class and CH query number. The
	// maps are built before the workers start and only read concurrently.
	archL := cfg.Engine.Arch().Label()
	txnHists := make(map[ch.TxnType]*classHist, 5)
	for t := ch.NewOrderTxn; t <= ch.StockLevelTxn; t++ {
		txnHists[t] = newClassHist("htap_bench_txn_duration_ns", archL, t.String())
	}
	queryHists := make(map[int]*classHist, len(queries))
	for _, q := range queries {
		queryHists[q.num] = newClassHist("htap_bench_query_duration_ns", archL, fmt.Sprintf("q%d", q.num))
	}

	// Attributed-latency histograms and slowest-query tracking (Profile
	// mode). Run-local only: the split is a per-run result, not a
	// process-wide series.
	var breakHists map[int]*breakdown
	if cfg.Profile {
		breakHists = make(map[int]*breakdown, len(queries))
		for _, q := range queries {
			breakHists[q.num] = &breakdown{
				admit: obs.NewHistogram(), exec: obs.NewHistogram(), spill: obs.NewHistogram(),
			}
		}
	}
	var (
		slowMu      sync.Mutex
		slowDur     time.Duration
		slowClass   string
		slowProfile string
	)

	var (
		stop       atomic.Bool
		txnErrs    atomic.Int64
		txnNanos   atomic.Int64
		queryCount atomic.Int64
		queryErrs  atomic.Int64
		queryNanos atomic.Int64
		wg         sync.WaitGroup
	)

	// Pacing for the HTAPBench rule: a token bucket at TargetTpmC/60 tps.
	var tokens chan struct{}
	if cfg.TargetTpmC > 0 {
		tokens = make(chan struct{}, 64)
		interval := time.Duration(float64(time.Minute) / cfg.TargetTpmC)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for !stop.Load() {
				<-tick.C
				select {
				case tokens <- struct{}{}:
				default:
				}
			}
		}()
	}

	for w := 0; w < cfg.TPWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + seed))
			for !stop.Load() {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Millisecond):
						continue
					}
				}
				start := time.Now()
				t, err := driver.RunOneTyped(ctx, rng)
				if err != nil {
					if ctx.Err() != nil {
						return // window closed mid-transaction: not an error
					}
					txnErrs.Add(1)
				} else {
					el := time.Since(start)
					txnNanos.Add(int64(el))
					txnHists[t].observe(el)
				}
			}
		}(int64(w))
	}

	for s := 0; s < cfg.APStreams; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*7777 + seed))
			runner, _ := cfg.Engine.(CHRunner)
			for !stop.Load() {
				q := queries[rng.Intn(len(queries))]
				qctx := ctx
				var prof *exec.QueryProfile
				var sp *obs.Span
				if cfg.Profile {
					// Root the trace at the client so remote retries and the
					// server-side spans all hang off one trace.
					prof = exec.NewQueryProfile()
					sp = obs.Trace.Start("client.query").AttrInt("q", int64(q.num))
					qctx = exec.WithProfile(obs.ContextWithSpan(ctx, sp), prof)
				}
				start := time.Now()
				var qerr error
				if runner != nil {
					_, qerr = runner.RunCH(qctx, q.num)
				} else {
					_, qerr = ch.RunQuery(qctx, cfg.Engine, q.num)
				}
				if sp != nil {
					sp.End()
				}
				if ctx.Err() != nil {
					return // window closed mid-query: the result is partial
				}
				if qerr != nil {
					// Shed (ErrOverloaded) or failed queries return in
					// backoff time, not scan time: counting them would
					// inflate QphH and skew the latency histograms.
					queryErrs.Add(1)
					continue
				}
				el := time.Since(start)
				queryNanos.Add(int64(el))
				queryCount.Add(1)
				queryHists[q.num].observe(el)
				if prof != nil {
					bh := breakHists[q.num]
					bh.admit.ObserveDuration(time.Duration(prof.AdmitNS()))
					bh.exec.ObserveDuration(time.Duration(prof.ExecNS()))
					bh.spill.ObserveDuration(time.Duration(prof.SpillNS()))
					slowMu.Lock()
					if el > slowDur {
						slowDur = el
						slowClass = fmt.Sprintf("q%d", q.num)
						slowProfile = prof.Render()
					}
					slowMu.Unlock()
				}
			}
		}(int64(s))
	}

	if cfg.SyncInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.SyncInterval)
			defer t.Stop()
			for !stop.Load() {
				<-t.C
				cfg.Engine.Sync()
			}
		}()
	}

	// Freshness sampler.
	var lagSumTS, lagSamples uint64
	var lagMaxTS uint64
	var lagSumTime, lagMaxTime time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for !stop.Load() {
			<-t.C
			s := cfg.Engine.Freshness()
			lagSumTS += s.LagTS
			lagSamples++
			if s.LagTS > lagMaxTS {
				lagMaxTS = s.LagTS
			}
			lagSumTime += s.LagTime
			if s.LagTime > lagMaxTime {
				lagMaxTime = s.LagTime
			}
		}
	}()

	pdScan0, pdMat0 := exec.PushdownRows()
	start := time.Now()
	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	stop.Store(true)
	cancel()
	wg.Wait()
	elapsed := time.Since(start)
	pdScan1, pdMat1 := exec.PushdownRows()

	counts := driver.Counts()
	total := int64(0)
	for _, n := range counts {
		total += n
	}
	res := Result{
		Elapsed:     elapsed,
		Txns:        total,
		NewOrder:    driver.NewOrders(),
		Queries:     queryCount.Load(),
		TxnErrors:   txnErrs.Load(),
		QueryErrors: queryErrs.Load(),
	}
	mins := elapsed.Minutes()
	res.TpmC = float64(res.NewOrder) / mins
	res.TPS = float64(res.Txns) / elapsed.Seconds()
	res.QphH = float64(res.Queries) / elapsed.Hours()
	if res.Txns > 0 {
		res.AvgTxnLatency = time.Duration(txnNanos.Load() / max64(res.Txns, 1))
	}
	if res.Queries > 0 {
		res.AvgQueryLatency = time.Duration(queryNanos.Load() / res.Queries)
	}
	res.PushdownScannedRows = pdScan1 - pdScan0
	res.PushdownMaterializedRows = pdMat1 - pdMat0
	if res.Queries > 0 {
		res.RowsMaterializedPerQuery = float64(res.PushdownMaterializedRows) / float64(res.Queries)
	}
	if lagSamples > 0 {
		res.FreshAvgLagTS = float64(lagSumTS) / float64(lagSamples)
		res.FreshAvgLagTime = lagSumTime / time.Duration(lagSamples)
	}
	res.FreshMaxLagTS = lagMaxTS
	res.FreshMaxLagTime = lagMaxTime
	for t := ch.NewOrderTxn; t <= ch.StockLevelTxn; t++ {
		if h := txnHists[t]; h.local.Count() > 0 {
			res.TxnClasses = append(res.TxnClasses, h.latency(t.String()))
		}
	}
	for _, q := range queries {
		if h := queryHists[q.num]; h.local.Count() > 0 {
			res.QueryClasses = append(res.QueryClasses, h.latency(fmt.Sprintf("q%d", q.num)))
		}
	}
	if cfg.Profile {
		for _, q := range queries {
			bh := breakHists[q.num]
			if bh.exec.Count() == 0 {
				continue
			}
			res.QueryBreakdown = append(res.QueryBreakdown, ClassBreakdown{
				Class:    fmt.Sprintf("q%d", q.num),
				Count:    int64(bh.exec.Count()),
				AdmitP99: time.Duration(bh.admit.Quantiles(0.99)[0]),
				ExecP99:  time.Duration(bh.exec.Quantiles(0.99)[0]),
				SpillP99: time.Duration(bh.spill.Quantiles(0.99)[0]),
			})
		}
		res.SlowestClass, res.SlowestDur, res.SlowestProfile = slowClass, slowDur, slowProfile
	}
	return res
}

// breakdown holds one query class's run-local attributed-latency
// histograms (Profile mode).
type breakdown struct {
	admit, exec, spill *obs.Histogram
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// numberedQuery pairs a CH query with its number, so per-class metrics can
// label latencies q1..q22.
type numberedQuery struct {
	num int
	fn  ch.QueryFunc
}

func pickQueries(set []int) []numberedQuery {
	all := ch.Queries()
	if len(set) == 0 {
		out := make([]numberedQuery, 0, len(all))
		for i := 1; i <= 22; i++ {
			out = append(out, numberedQuery{num: i, fn: all[i]})
		}
		return out
	}
	out := make([]numberedQuery, 0, len(set))
	for _, i := range set {
		if q, ok := all[i]; ok {
			out = append(out, numberedQuery{num: i, fn: q})
		}
	}
	return out
}

// IsolationProbe quantifies workload interference (§2.3(2)): run OLTP
// alone, then OLTP with the OLAP side on, and report the degradation.
type IsolationProbe struct {
	BaselineTPS float64
	MixedTPS    float64
	// DegradationPct is the share of OLTP throughput lost to OLAP
	// co-execution: the paper's "what percentage of performance
	// degradation the systems should pay".
	DegradationPct float64
}

// RunIsolationProbe measures OLTP throughput with and without AP streams.
func RunIsolationProbe(cfg Config) IsolationProbe {
	alone := cfg
	alone.APStreams = 0
	a := Run(alone)
	m := Run(cfg)
	p := IsolationProbe{BaselineTPS: a.TPS, MixedTPS: m.TPS}
	if a.TPS > 0 {
		p.DegradationPct = 100 * (a.TPS - m.TPS) / a.TPS
	}
	return p
}
