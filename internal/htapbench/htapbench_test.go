package htapbench

import (
	"testing"
	"time"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/sched"
)

func smallEngine(t testing.TB) (core.Engine, ch.Scale) {
	t.Helper()
	e := core.NewEngineA(core.ConfigA{Schemas: ch.Schemas()})
	s := ch.SmallScale(1)
	if _, err := ch.NewGenerator(s).Load(e); err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestMixedRunProducesMetrics(t *testing.T) {
	e, s := smallEngine(t)
	defer e.Close()
	res := Run(Config{
		Engine: e, Scale: s, TPWorkers: 2, APStreams: 1,
		Duration: 300 * time.Millisecond, QuerySet: []int{1, 6},
		SyncInterval: 20 * time.Millisecond, Seed: 1,
	})
	if res.Txns <= 0 {
		t.Fatalf("no transactions: %+v", res)
	}
	if res.Queries <= 0 {
		t.Fatalf("no queries: %+v", res)
	}
	if res.TpmC <= 0 || res.TPS <= 0 || res.QphH <= 0 {
		t.Fatalf("rates: %+v", res)
	}
	if res.AvgTxnLatency <= 0 || res.AvgQueryLatency <= 0 {
		t.Fatalf("latencies: %+v", res)
	}
}

func TestHTAPBenchPacingLimitsTPS(t *testing.T) {
	e, s := smallEngine(t)
	defer e.Close()
	const target = 600.0 // tpmC -> 10 txn/s
	res := Run(Config{
		Engine: e, Scale: s, TPWorkers: 2, APStreams: 0,
		Duration: 500 * time.Millisecond, TargetTpmC: target, Seed: 2,
	})
	// Paced TPS must be near target/60, far below the unthrottled rate.
	if res.TPS > target/60*3 {
		t.Fatalf("paced TPS %f exceeds target %f tps", res.TPS, target/60)
	}
}

func TestQuerySetFiltering(t *testing.T) {
	qs := pickQueries(nil)
	if len(qs) != 22 {
		t.Fatalf("default query set = %d", len(qs))
	}
	qs = pickQueries([]int{1, 6, 99})
	if len(qs) != 2 {
		t.Fatalf("filtered query set = %d", len(qs))
	}
}

func TestIsolationProbe(t *testing.T) {
	e, s := smallEngine(t)
	defer e.Close()
	p := RunIsolationProbe(Config{
		Engine: e, Scale: s, TPWorkers: 2, APStreams: 2,
		Duration: 250 * time.Millisecond, QuerySet: []int{5}, Seed: 3,
	})
	if p.BaselineTPS <= 0 || p.MixedTPS <= 0 {
		t.Fatalf("probe rates: %+v", p)
	}
	// On a single core, co-running OLAP must cost OLTP something.
	if p.DegradationPct < 0 {
		// A negative value can only come from noise; allow a little.
		if p.DegradationPct < -30 {
			t.Fatalf("degradation %f%% is nonsensical", p.DegradationPct)
		}
	}
}

func TestFreshnessSamplesCollected(t *testing.T) {
	e, s := smallEngine(t)
	defer e.Close()
	// Isolated mode: the analytical view only advances on syncs, so
	// staleness accumulates measurably.
	e.SetMode(sched.Isolated)
	res := Run(Config{
		Engine: e, Scale: s, TPWorkers: 2, APStreams: 0,
		Duration: 300 * time.Millisecond, Seed: 4,
	})
	// No syncs ran, so staleness accumulates.
	if res.FreshMaxLagTS == 0 {
		t.Fatalf("no staleness observed: %+v", res)
	}
}
