package twopc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// This file is the service-layer face of two-phase commit: the Coordinator
// above drives Raft proposals inside one engine, while CommitAll drives
// whole transaction branches across engines (the distributed coordinator's
// shards, in-process or behind a network connection). The branch itself is
// opaque — a TxParticipant may be a pinned client connection whose Prepare
// is a wire round-trip, or a local transaction whose Prepare is a no-op
// because its writes were validated on the way in.

// TxParticipant is one branch of a distributed transaction. Prepare must
// leave the branch able to either Commit or Abort regardless of what other
// branches decide; after Prepare succeeds, Commit may only fail for
// reasons that leave the outcome unknown (a lost ack, a crashed peer) —
// never because validation ran late.
type TxParticipant interface {
	// Name identifies the branch in errors and logs (e.g. "shard-2").
	Name() string
	// Prepare validates the branch and persists its writes as pending.
	Prepare(ctx context.Context) error
	// Commit makes the prepared writes durable and visible.
	Commit(ctx context.Context) error
	// Abort discards the branch. Best-effort: locks it fails to release
	// die with their transaction's lease, so errors are not reported.
	Abort(ctx context.Context)
}

// ErrIndeterminate is the sentinel matched by errors.Is for commit
// outcomes the coordinator cannot know. It mirrors the client's
// CommitIndeterminateError contract: not safe to retry, because some
// branches may have committed.
var ErrIndeterminate = errors.New("twopc: commit outcome indeterminate")

// IndeterminateError reports a distributed commit whose point of no
// return was passed but whose branches did not all acknowledge. The
// transaction is committed on Committed branches; Failed branches hold
// the commit record in their replicated log (or their prepared state) and
// converge on recovery — the data never diverges, only the coordinator's
// knowledge of it.
type IndeterminateError struct {
	Committed []string // branches that acknowledged the commit
	Failed    []string // branches whose acknowledgement was lost
	Cause     error    // first failure observed
}

func (e *IndeterminateError) Error() string {
	return fmt.Sprintf("twopc: commit outcome indeterminate (committed: %s; unacked: %s): %v",
		strings.Join(e.Committed, ","), strings.Join(e.Failed, ","), e.Cause)
}

func (e *IndeterminateError) Is(target error) bool { return target == ErrIndeterminate }
func (e *IndeterminateError) Unwrap() error        { return e.Cause }

// CommitAll drives two-phase commit across the branches of one
// distributed transaction.
//
// A single branch skips the prepare round entirely — its own Commit
// carries the one-shot semantics, and its error (including an
// indeterminate one from a remote branch) passes through unchanged.
//
// With multiple branches, phase one prepares all of them in parallel; any
// prepare failure aborts every branch and returns that failure, which is
// safe to retry because nothing committed. Phase two is the point of no
// return: commit records are delivered to every branch in order, and a
// branch that fails to acknowledge yields an IndeterminateError — the
// remaining branches are still driven to commit (their prepared state
// must resolve), and the caller must surface the unknown outcome rather
// than retry.
func CommitAll(ctx context.Context, branches ...TxParticipant) error {
	switch len(branches) {
	case 0:
		return nil
	case 1:
		return branches[0].Commit(ctx)
	}

	// Phase 1: prepare everywhere, in parallel.
	var wg sync.WaitGroup
	prepErrs := make([]error, len(branches))
	for i, b := range branches {
		wg.Add(1)
		go func(i int, b TxParticipant) {
			defer wg.Done()
			prepErrs[i] = b.Prepare(ctx)
		}(i, b)
	}
	wg.Wait()
	prepErr := errors.Join(prepErrs...)
	if prepErr == nil {
		// Last chance to walk away: a cancelled caller aborts cleanly
		// here, never mid-commit.
		prepErr = ctx.Err()
	}
	if prepErr != nil {
		abortAll(ctx, branches)
		return prepErr
	}

	// Phase 2: the decision is commit. Deliver it to every branch even if
	// the caller's context dies — a prepared branch left undecided holds
	// its locks until recovery.
	cctx := context.WithoutCancel(ctx)
	var committed, failed []string
	var cause error
	for _, b := range branches {
		if err := b.Commit(cctx); err != nil {
			failed = append(failed, b.Name())
			if cause == nil {
				cause = err
			}
		} else {
			committed = append(committed, b.Name())
		}
	}
	if cause != nil {
		return &IndeterminateError{Committed: committed, Failed: failed, Cause: cause}
	}
	return nil
}

func abortAll(ctx context.Context, branches []TxParticipant) {
	actx := context.WithoutCancel(ctx)
	var wg sync.WaitGroup
	for _, b := range branches {
		wg.Add(1)
		go func(b TxParticipant) {
			defer wg.Done()
			b.Abort(actx)
		}(b)
	}
	wg.Wait()
}
