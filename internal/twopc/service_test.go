package twopc

import (
	"context"
	"errors"
	"testing"

	"htap/internal/cluster"
	"htap/internal/raft"
	"htap/internal/txn"
	"htap/internal/types"
)

// branchFault is a deterministic fault plan for one branch, in the style
// of disk.FaultPlan: the test states exactly which protocol step fails,
// so every run exercises the same crash.
type branchFault struct {
	failPrepare bool // prepare never reaches the branch
	dropCommit  bool // crash BEFORE the commit record is logged: it is lost
	dropAck     bool // crash AFTER the record is logged: only the ack is lost
}

var errInjected = errors.New("injected crash")

// svcBranch is a TxParticipant whose durable state is a replayable command
// log feeding a Participant — the service-layer analogue of one shard.
// "Crash" discards the volatile participant and store; recovery rebuilds
// both by replaying the log from the start, exactly what a restarted
// replica does with its Raft log.
type svcBranch struct {
	name     string
	p        *Participant
	st       *memStorage
	log      []raft.Command
	fault    branchFault
	prepares int
	prepared bool

	txnID, startTS, commitTS uint64
	muts                     []cluster.Mutation
}

func newSvcBranch(name string, txnID, startTS, commitTS uint64, key int64) *svcBranch {
	st := newMemStorage()
	return &svcBranch{
		name: name, p: NewParticipant(st), st: st,
		txnID: txnID, startTS: startTS, commitTS: commitTS,
		muts: []cluster.Mutation{{Table: 1, Key: key, Op: txn.OpUpdate, Row: types.Row{types.NewInt(key * 10)}}},
	}
}

func (b *svcBranch) Name() string { return b.name }

func (b *svcBranch) apply(cmd raft.Command) {
	b.log = append(b.log, cmd)
	b.p.Apply(cmd)
}

func (b *svcBranch) Prepare(ctx context.Context) error {
	b.prepares++
	if b.fault.failPrepare {
		return errInjected
	}
	b.prepared = true
	b.apply(EncodePrepare(Prepare{TxnID: b.txnID, StartTS: b.startTS, Muts: b.muts}))
	if v, ok := b.p.Verdict(b.txnID); ok && v != nil {
		return v
	}
	return nil
}

func (b *svcBranch) Commit(ctx context.Context) error {
	if b.fault.dropCommit {
		return errInjected
	}
	if b.prepared {
		b.apply(EncodeCommit(b.txnID, b.commitTS))
	} else {
		// Never prepared: the driver chose the single-branch fast path, so
		// this commit carries one-shot semantics like a lone shard would.
		b.apply(EncodeOneShot(b.txnID, b.startTS, b.commitTS, b.muts))
	}
	if b.fault.dropAck {
		return errInjected
	}
	return nil
}

func (b *svcBranch) Abort(ctx context.Context) { b.apply(EncodeAbort(b.txnID)) }

// recover models a restart: volatile state is gone, the log replays.
func (b *svcBranch) recover() {
	b.st = newMemStorage()
	b.p = NewParticipant(b.st)
	for _, cmd := range b.log {
		b.p.Apply(cmd)
	}
}

func (b *svcBranch) committedValue(t *testing.T) int64 {
	t.Helper()
	r, ok := b.st.get(b.muts[0].Key)
	if !ok {
		t.Fatalf("branch %s: key %d not committed", b.name, b.muts[0].Key)
	}
	return r[0].Int()
}

func TestCommitAllSingleBranchSkipsPrepare(t *testing.T) {
	b := newSvcBranch("only", 1, 0, 5, 1)
	if err := CommitAll(context.Background(), b); err != nil {
		t.Fatalf("single-branch commit: %v", err)
	}
	if b.prepares != 0 {
		t.Fatalf("single branch prepared %d times, want the one-shot fast path", b.prepares)
	}
	if got := b.committedValue(t); got != 10 {
		t.Fatalf("value = %d", got)
	}
}

func TestCommitAllPrepareFailureAbortsAll(t *testing.T) {
	a := newSvcBranch("s0", 1, 0, 5, 1)
	b := newSvcBranch("s1", 1, 0, 5, 2)
	c := newSvcBranch("s2", 1, 0, 5, 3)
	b.fault.failPrepare = true

	err := CommitAll(context.Background(), a, b, c)
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected prepare failure", err)
	}
	if errors.Is(err, ErrIndeterminate) {
		t.Fatal("prepare failure must not be indeterminate: nothing committed, retry is safe")
	}
	for _, br := range []*svcBranch{a, b, c} {
		if br.p.LockCount() != 0 {
			t.Fatalf("branch %s holds %d locks after abort", br.name, br.p.LockCount())
		}
		if _, ok := br.st.get(br.muts[0].Key); ok {
			t.Fatalf("branch %s installed data from an aborted transaction", br.name)
		}
	}

	// Retry with a fresh transaction id and a healed branch: must succeed.
	for _, br := range []*svcBranch{a, b, c} {
		br.fault = branchFault{}
		br.txnID, br.commitTS = 2, 6
	}
	if err := CommitAll(context.Background(), a, b, c); err != nil {
		t.Fatalf("retry after clean abort: %v", err)
	}
	for _, br := range []*svcBranch{a, b, c} {
		if got := br.committedValue(t); got != br.muts[0].Key*10 {
			t.Fatalf("branch %s value = %d", br.name, got)
		}
	}
}

func TestCommitAllLostAckIsIndeterminateAndConverges(t *testing.T) {
	a := newSvcBranch("s0", 1, 0, 5, 1)
	b := newSvcBranch("s1", 1, 0, 5, 2)
	c := newSvcBranch("s2", 1, 0, 5, 3)
	b.fault.dropAck = true // commit record logged, participant dies before replying

	err := CommitAll(context.Background(), a, b, c)
	var ind *IndeterminateError
	if !errors.As(err, &ind) || !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("err = %v, want IndeterminateError", err)
	}
	if len(ind.Committed) != 2 || len(ind.Failed) != 1 || ind.Failed[0] != "s1" {
		t.Fatalf("outcome = committed %v / failed %v", ind.Committed, ind.Failed)
	}

	// The crashed branch restarts and replays its log: the commit record
	// is durable there, so all branches converge with no divergence.
	b.recover()
	for _, br := range []*svcBranch{a, b, c} {
		if got := br.committedValue(t); got != br.muts[0].Key*10 {
			t.Fatalf("branch %s value = %d after recovery", br.name, got)
		}
		if br.p.AppliedTS() != 5 {
			t.Fatalf("branch %s applied TS = %d, want 5", br.name, br.p.AppliedTS())
		}
		if br.p.LockCount() != 0 {
			t.Fatalf("branch %s holds locks after recovery", br.name)
		}
	}
}

func TestCommitAllLostCommitRecordResolvesOnRecovery(t *testing.T) {
	a := newSvcBranch("s0", 1, 0, 5, 1)
	b := newSvcBranch("s1", 1, 0, 5, 2)
	b.fault.dropCommit = true // crash between prepare and commit: record never logged

	err := CommitAll(context.Background(), a, b)
	if !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("err = %v, want indeterminate", err)
	}

	// After restart the branch replays only its prepare: the transaction
	// is still pending there, locks held, data uninstalled — prepared
	// state survives the crash instead of diverging.
	b.recover()
	if b.p.LockCount() != 1 {
		t.Fatalf("recovered branch lost its prepared locks: %d", b.p.LockCount())
	}
	if _, ok := b.st.get(2); ok {
		t.Fatal("recovered branch installed unresolved data")
	}

	// Resolution: the coordinator (or a recovery sweep reading the other
	// branches' outcome) re-delivers the commit decision; idempotent
	// apply converges both branches.
	b.fault.dropCommit = false
	if err := b.Commit(context.Background()); err != nil {
		t.Fatalf("re-delivered commit: %v", err)
	}
	b.p.Apply(EncodeCommit(1, 5)) // duplicate delivery must stay a no-op
	for _, br := range []*svcBranch{a, b} {
		if got := br.committedValue(t); got != br.muts[0].Key*10 {
			t.Fatalf("branch %s value = %d after resolution", br.name, got)
		}
		if br.p.AppliedTS() != 5 {
			t.Fatalf("branch %s applied TS = %d", br.name, br.p.AppliedTS())
		}
	}
}

func TestCommitAllCancelledBeforeDecisionAborts(t *testing.T) {
	a := newSvcBranch("s0", 1, 0, 5, 1)
	b := newSvcBranch("s1", 1, 0, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	err := CommitAll(ctx, a, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrIndeterminate) {
		t.Fatal("cancellation before the decision must stay retryable")
	}
	for _, br := range []*svcBranch{a, b} {
		if br.p.LockCount() != 0 {
			t.Fatalf("branch %s holds locks after cancelled commit", br.name)
		}
	}
}
