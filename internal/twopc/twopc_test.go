package twopc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"htap/internal/cluster"
	"htap/internal/txn"
	"htap/internal/types"
)

// memStorage is a deterministic map-backed Storage.
type memStorage struct {
	mu       sync.Mutex
	rows     map[int64]types.Row
	versions map[int64]uint64
}

func newMemStorage() *memStorage {
	return &memStorage{rows: make(map[int64]types.Row), versions: make(map[int64]uint64)}
}

func (s *memStorage) LatestVersion(table uint32, key int64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[key]
}

func (s *memStorage) ApplyMutations(commitTS uint64, muts []cluster.Mutation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range muts {
		s.versions[m.Key] = commitTS
		if m.Op == txn.OpDelete {
			delete(s.rows, m.Key)
		} else {
			s.rows[m.Key] = m.Row
		}
	}
}

func (s *memStorage) get(key int64) (types.Row, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rows[key]
	return r, ok
}

// harness wires a cluster whose every replica owns a participant.
type harness struct {
	c            *cluster.Cluster
	coord        *Coordinator
	oracle       *txn.Oracle
	participants map[int]map[int]*Participant // part -> node -> participant
	stores       map[int]map[int]*memStorage
	mu           sync.Mutex
}

func TestParticipantPrepareCommit(t *testing.T) {
	st := newMemStorage()
	p := NewParticipant(st)

	muts := []cluster.Mutation{{Table: 1, Key: 1, Op: txn.OpUpdate, Row: types.Row{types.NewInt(1)}}}
	p.Apply(EncodePrepare(Prepare{TxnID: 7, StartTS: 0, Muts: muts}))
	if err, ok := p.Verdict(7); !ok || err != nil {
		t.Fatalf("verdict = (%v, %v)", err, ok)
	}
	if p.LockCount() != 1 {
		t.Fatalf("locks = %d", p.LockCount())
	}
	p.Apply(EncodeCommit(7, 5))
	if p.LockCount() != 0 {
		t.Fatal("locks not released")
	}
	if r, ok := st.get(1); !ok || r[0].Int() != 1 {
		t.Fatalf("row = %v %v", r, ok)
	}
	if p.AppliedTS() != 5 {
		t.Fatalf("applied = %d", p.AppliedTS())
	}
}

func TestParticipantConflicts(t *testing.T) {
	st := newMemStorage()
	p := NewParticipant(st)
	muts := func(key int64) []cluster.Mutation {
		return []cluster.Mutation{{Table: 1, Key: key, Op: txn.OpUpdate, Row: types.Row{types.NewInt(key)}}}
	}
	// Lock conflict.
	p.Apply(EncodePrepare(Prepare{TxnID: 1, StartTS: 0, Muts: muts(9)}))
	p.Apply(EncodePrepare(Prepare{TxnID: 2, StartTS: 0, Muts: muts(9)}))
	if err, _ := p.Verdict(2); !errors.Is(err, ErrConflict) {
		t.Fatalf("lock conflict verdict = %v", err)
	}
	p.Apply(EncodeAbort(1))
	if p.LockCount() != 0 {
		t.Fatal("abort did not release lock")
	}
	// Version conflict: commit at ts 10, then prepare with snapshot 5.
	p.Apply(EncodePrepare(Prepare{TxnID: 3, StartTS: 0, Muts: muts(9)}))
	p.Apply(EncodeCommit(3, 10))
	p.Apply(EncodePrepare(Prepare{TxnID: 4, StartTS: 5, Muts: muts(9)}))
	if err, _ := p.Verdict(4); !errors.Is(err, ErrConflict) {
		t.Fatalf("version conflict verdict = %v", err)
	}
	// Snapshot at/after the version is fine.
	p.Apply(EncodePrepare(Prepare{TxnID: 5, StartTS: 10, Muts: muts(9)}))
	if err, _ := p.Verdict(5); err != nil {
		t.Fatalf("fresh snapshot rejected: %v", err)
	}
}

func TestParticipantOneShot(t *testing.T) {
	st := newMemStorage()
	p := NewParticipant(st)
	muts := []cluster.Mutation{{Table: 1, Key: 2, Op: txn.OpUpdate, Row: types.Row{types.NewInt(2)}}}
	p.Apply(EncodeOneShot(11, 0, 7, muts))
	if r, ok := st.get(2); !ok || r[0].Int() != 2 {
		t.Fatalf("one-shot row = %v %v", r, ok)
	}
	if p.LockCount() != 0 {
		t.Fatal("one-shot left locks")
	}
	// A conflicting one-shot self-aborts.
	p.Apply(EncodePrepare(Prepare{TxnID: 12, StartTS: 7, Muts: muts}))
	p.Apply(EncodeOneShot(13, 7, 9, muts))
	if _, ok := st.get(2); !ok {
		t.Fatal("row vanished")
	}
	if st.versions[2] != 7 {
		t.Fatalf("conflicting one-shot applied: version = %d", st.versions[2])
	}
}

func TestParticipantIdempotentCommit(t *testing.T) {
	st := newMemStorage()
	p := NewParticipant(st)
	muts := []cluster.Mutation{{Table: 1, Key: 3, Op: txn.OpUpdate, Row: types.Row{types.NewInt(3)}}}
	p.Apply(EncodePrepare(Prepare{TxnID: 1, StartTS: 0, Muts: muts}))
	p.Apply(EncodeCommit(1, 4))
	p.Apply(EncodeCommit(1, 4)) // duplicate: must be a no-op
	p.Apply(EncodeAbort(99))    // unknown txn: no-op
	if st.versions[3] != 4 {
		t.Fatalf("version = %d", st.versions[3])
	}
}

func TestParticipantDeterminism(t *testing.T) {
	// Two replicas fed the same command sequence converge exactly.
	cmds := [][]byte{
		EncodePrepare(Prepare{TxnID: 1, StartTS: 0, Muts: []cluster.Mutation{
			{Table: 1, Key: 1, Op: txn.OpUpdate, Row: types.Row{types.NewInt(10)}}}}),
		EncodeCommit(1, 2),
		EncodePrepare(Prepare{TxnID: 2, StartTS: 1, Muts: []cluster.Mutation{
			{Table: 1, Key: 1, Op: txn.OpUpdate, Row: types.Row{types.NewInt(20)}}}}),
		EncodeAbort(2), // conflicted on version, coordinator aborts
		EncodePrepare(Prepare{TxnID: 3, StartTS: 2, Muts: []cluster.Mutation{
			{Table: 1, Key: 1, Op: txn.OpDelete}}}),
		EncodeCommit(3, 5),
	}
	a, b := newMemStorage(), newMemStorage()
	pa, pb := NewParticipant(a), NewParticipant(b)
	for _, c := range cmds {
		pa.Apply(c)
		pb.Apply(c)
	}
	if len(a.rows) != len(b.rows) || a.versions[1] != b.versions[1] {
		t.Fatalf("replicas diverged: %v vs %v", a.rows, b.rows)
	}
	if _, ok := a.get(1); ok {
		t.Fatal("delete not applied")
	}
}

func TestCoordinatorSinglePartitionFastPath(t *testing.T) {
	h := newHarnessWithApply(t, 1)
	ts, err := h.coord.Commit(0, []cluster.Mutation{
		{Table: 1, Key: 4, Op: txn.OpUpdate, Row: types.Row{types.NewInt(4)}},
	})
	if err != nil || ts == 0 {
		t.Fatalf("commit = (%d, %v)", ts, err)
	}
	h.waitApplied(t, 0, 4)
}

func TestCoordinatorCrossPartition(t *testing.T) {
	h := newHarnessWithApply(t, 2)
	ts, err := h.coord.Commit(0, []cluster.Mutation{
		{Table: 1, Key: 0, Op: txn.OpUpdate, Row: types.Row{types.NewInt(100)}},
		{Table: 1, Key: 1, Op: txn.OpUpdate, Row: types.Row{types.NewInt(101)}},
	})
	if err != nil || ts == 0 {
		t.Fatalf("commit = (%d, %v)", ts, err)
	}
	h.waitApplied(t, 0, 0)
	h.waitApplied(t, 1, 1)
}

func TestCoordinatorConflictAborts(t *testing.T) {
	h := newHarnessWithApply(t, 2)
	if _, err := h.coord.Commit(0, []cluster.Mutation{
		{Table: 1, Key: 0, Op: txn.OpUpdate, Row: types.Row{types.NewInt(1)}},
		{Table: 1, Key: 1, Op: txn.OpUpdate, Row: types.Row{types.NewInt(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	// Stale snapshot (0) against the now-committed versions must abort.
	_, err := h.coord.Commit(0, []cluster.Mutation{
		{Table: 1, Key: 0, Op: txn.OpUpdate, Row: types.Row{types.NewInt(2)}},
		{Table: 1, Key: 1, Op: txn.OpUpdate, Row: types.Row{types.NewInt(2)}},
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale cross-partition commit = %v, want conflict", err)
	}
	// Locks must be fully released so a fresh transaction succeeds.
	fresh := h.oracle.Watermark()
	if _, err := h.coord.Commit(fresh, []cluster.Mutation{
		{Table: 1, Key: 0, Op: txn.OpUpdate, Row: types.Row{types.NewInt(3)}},
	}); err != nil {
		t.Fatalf("post-abort commit: %v", err)
	}
}

// newHarnessWithApply builds a cluster whose Raft groups feed participants.
func newHarnessWithApply(t *testing.T, partitions int) *harness {
	t.Helper()
	h := &harness{
		oracle:       &txn.Oracle{},
		participants: make(map[int]map[int]*Participant),
		stores:       make(map[int]map[int]*memStorage),
	}
	const voters = 3
	for p := 0; p < partitions; p++ {
		h.participants[p] = make(map[int]*Participant)
		h.stores[p] = make(map[int]*memStorage)
		for n := 0; n < voters; n++ {
			st := newMemStorage()
			h.stores[p][n] = st
			h.participants[p][n] = NewParticipant(st)
		}
	}
	h.c = cluster.New(cluster.Config{
		Partitions: partitions, VotersPer: voters,
		Route: func(table uint32, key int64) int {
			return int(uint64(key) % uint64(partitions))
		},
		ApplyRaw: func(part, nodeID int, learner bool, cmd []byte) {
			h.mu.Lock()
			p := h.participants[part][nodeID]
			h.mu.Unlock()
			if p != nil {
				p.Apply(cmd)
			}
		},
	})
	t.Cleanup(h.c.Stop)
	if err := h.c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.coord = NewCoordinator(h.c, h.oracle, func(part int) *Participant {
		l := h.c.Partitions[part].Leader()
		return h.participants[part][l.Status().ID]
	})
	return h
}

func (h *harness) waitApplied(t *testing.T, part int, key int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, st := range h.stores[part] {
			if _, found := st.get(key); !found {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("key %d not applied on all replicas of partition %d", key, part)
}
