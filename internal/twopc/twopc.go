// Package twopc implements two-phase commit over Raft-replicated
// partitions — the "2PC + Raft + logging" transaction-processing technique
// the paper attributes to TiDB (Table 2, §2.2(1)(ii)).
//
// Every protocol action is itself a Raft proposal, so locks and pending
// writes are replicated state: a participant's state machine is
// deterministic across its replicas, and leadership changes cannot lose
// prepared transactions. A transaction touching one partition takes the
// one-phase fast path (a single PREPARE+COMMIT proposal); a multi-partition
// transaction pays one Raft round for PREPARE on each participant and a
// second for COMMIT — which is exactly why the paper's Table 2 scores this
// technique "High Scalability / Low Efficiency".
package twopc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"htap/internal/cluster"
	"htap/internal/raft"
	"htap/internal/txn"
	"htap/internal/types"
)

// Command kinds, the first byte of every replicated command.
const (
	cmdPrepare byte = 'P'
	cmdCommit  byte = 'C'
	cmdAbort   byte = 'A'
	cmdOneShot byte = 'O' // single-partition fast path: prepare+commit fused
)

// ErrConflict reports a prepare-time lock or version conflict.
var ErrConflict = errors.New("twopc: conflict")

// Storage is the partition-local state a participant mutates. Voter
// replicas install rows into a row store; learner replicas feed a columnar
// delta. Implementations must be deterministic given the same calls.
type Storage interface {
	// LatestVersion returns the newest committed version timestamp for the
	// key (0 when absent); prepare validation compares it to the
	// transaction's snapshot.
	LatestVersion(table uint32, key int64) uint64
	// ApplyMutations installs committed mutations at commitTS.
	ApplyMutations(commitTS uint64, muts []cluster.Mutation)
}

// --- command encoding ---

// Prepare carries a transaction's writes for one partition.
type Prepare struct {
	TxnID   uint64
	StartTS uint64
	Muts    []cluster.Mutation
}

// EncodePrepare serializes a PREPARE command.
func EncodePrepare(p Prepare) raft.Command {
	buf := []byte{cmdPrepare}
	buf = binary.AppendUvarint(buf, p.TxnID)
	buf = binary.AppendUvarint(buf, p.StartTS)
	buf = appendMutations(buf, p.Muts)
	return buf
}

// EncodeOneShot serializes the single-partition fast-path command.
func EncodeOneShot(txnID, startTS, commitTS uint64, muts []cluster.Mutation) raft.Command {
	buf := []byte{cmdOneShot}
	buf = binary.AppendUvarint(buf, txnID)
	buf = binary.AppendUvarint(buf, startTS)
	buf = binary.AppendUvarint(buf, commitTS)
	buf = appendMutations(buf, muts)
	return buf
}

// EncodeCommit serializes a COMMIT command.
func EncodeCommit(txnID, commitTS uint64) raft.Command {
	buf := []byte{cmdCommit}
	buf = binary.AppendUvarint(buf, txnID)
	buf = binary.AppendUvarint(buf, commitTS)
	return buf
}

// EncodeAbort serializes an ABORT command.
func EncodeAbort(txnID uint64) raft.Command {
	buf := []byte{cmdAbort}
	buf = binary.AppendUvarint(buf, txnID)
	return buf
}

func appendMutations(buf []byte, muts []cluster.Mutation) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		buf = append(buf, byte(m.Op))
		buf = binary.AppendUvarint(buf, uint64(m.Table))
		buf = binary.AppendVarint(buf, m.Key)
		if m.Op != txn.OpDelete {
			buf = types.AppendRow(buf, m.Row)
		}
	}
	return buf
}

func decodeMutations(b []byte) ([]cluster.Mutation, []byte, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("twopc: bad mutation count")
	}
	b = b[n:]
	muts := make([]cluster.Mutation, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		if len(b) == 0 {
			return nil, nil, fmt.Errorf("twopc: truncated mutations")
		}
		op := txn.Op(b[0])
		b = b[1:]
		table, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("twopc: bad table")
		}
		b = b[n:]
		key, n := binary.Varint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("twopc: bad key")
		}
		b = b[n:]
		m := cluster.Mutation{Table: uint32(table), Key: key, Op: op}
		if op != txn.OpDelete {
			row, used, err := types.DecodeRow(b)
			if err != nil {
				return nil, nil, err
			}
			b = b[used:]
			m.Row = row
		}
		muts = append(muts, m)
	}
	return muts, b, nil
}

// --- participant ---

type lockKey struct {
	table uint32
	key   int64
}

type pendingTxn struct {
	startTS uint64
	muts    []cluster.Mutation
	locks   []lockKey
}

// Participant is the deterministic per-replica state machine. Feed every
// committed Raft command of the partition to Apply, in order.
type Participant struct {
	store Storage

	mu       sync.Mutex
	locks    map[lockKey]uint64 // -> txn id
	pending  map[uint64]*pendingTxn
	verdicts map[uint64]error // prepare outcomes, consumed by the coordinator
	applied  uint64           // highest commitTS installed
}

// NewParticipant wraps storage in a 2PC state machine.
func NewParticipant(store Storage) *Participant {
	return &Participant{
		store:    store,
		locks:    make(map[lockKey]uint64),
		pending:  make(map[uint64]*pendingTxn),
		verdicts: make(map[uint64]error),
	}
}

// Apply executes one committed command. It must be called in Raft log
// order.
func (p *Participant) Apply(cmd raft.Command) {
	if len(cmd) == 0 {
		return
	}
	b := []byte(cmd[1:])
	switch cmd[0] {
	case cmdPrepare:
		txnID, n := binary.Uvarint(b)
		b = b[n:]
		startTS, n := binary.Uvarint(b)
		b = b[n:]
		muts, _, err := decodeMutations(b)
		if err != nil {
			panic(fmt.Sprintf("twopc: corrupt prepare: %v", err))
		}
		p.applyPrepare(txnID, startTS, muts)
	case cmdOneShot:
		txnID, n := binary.Uvarint(b)
		b = b[n:]
		startTS, n := binary.Uvarint(b)
		b = b[n:]
		commitTS, n := binary.Uvarint(b)
		b = b[n:]
		muts, _, err := decodeMutations(b)
		if err != nil {
			panic(fmt.Sprintf("twopc: corrupt one-shot: %v", err))
		}
		if p.applyPrepare(txnID, startTS, muts) == nil {
			p.applyCommit(txnID, commitTS)
		}
		// On failure nothing was installed (applyPrepare is all-or-nothing)
		// and the verdict MUST survive for the coordinator to read — an
		// applyAbort here would erase it and turn the conflict into a
		// silent lost update.
	case cmdCommit:
		txnID, n := binary.Uvarint(b)
		b = b[n:]
		commitTS, _ := binary.Uvarint(b)
		p.applyCommit(txnID, commitTS)
	case cmdAbort:
		txnID, _ := binary.Uvarint(b)
		p.applyAbort(txnID)
	}
}

func (p *Participant) applyPrepare(txnID, startTS uint64, muts []cluster.Mutation) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Validate: every key unlocked and unchanged since the snapshot.
	var err error
	for _, m := range muts {
		k := lockKey{m.Table, m.Key}
		if holder, locked := p.locks[k]; locked && holder != txnID {
			err = fmt.Errorf("%w: key %d locked by txn %d", ErrConflict, m.Key, holder)
			break
		}
		if v := p.store.LatestVersion(m.Table, m.Key); v > startTS {
			err = fmt.Errorf("%w: key %d has version %d > snapshot %d", ErrConflict, m.Key, v, startTS)
			break
		}
	}
	p.verdicts[txnID] = err
	// Only the leader's verdict is consumed; bound the map on replicas
	// that never serve coordinators.
	if len(p.verdicts) > 1<<14 {
		for id := range p.verdicts {
			delete(p.verdicts, id)
			if len(p.verdicts) <= 1<<13 {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	pt := &pendingTxn{startTS: startTS, muts: muts}
	for _, m := range muts {
		k := lockKey{m.Table, m.Key}
		p.locks[k] = txnID
		pt.locks = append(pt.locks, k)
	}
	p.pending[txnID] = pt
	return nil
}

func (p *Participant) applyCommit(txnID, commitTS uint64) {
	p.mu.Lock()
	pt := p.pending[txnID]
	if pt == nil {
		p.mu.Unlock()
		return // duplicate or post-abort commit: idempotent no-op
	}
	delete(p.pending, txnID)
	for _, k := range pt.locks {
		if p.locks[k] == txnID {
			delete(p.locks, k)
		}
	}
	if commitTS > p.applied {
		p.applied = commitTS
	}
	delete(p.verdicts, txnID)
	p.mu.Unlock()
	p.store.ApplyMutations(commitTS, pt.muts)
}

func (p *Participant) applyAbort(txnID uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pt := p.pending[txnID]
	if pt != nil {
		delete(p.pending, txnID)
		for _, k := range pt.locks {
			if p.locks[k] == txnID {
				delete(p.locks, k)
			}
		}
	}
	delete(p.verdicts, txnID)
}

// Verdict returns and consumes the prepare outcome for txnID.
func (p *Participant) Verdict(txnID uint64) (error, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	err, ok := p.verdicts[txnID]
	if ok {
		delete(p.verdicts, txnID)
	}
	return err, ok
}

// AppliedTS returns the highest commit timestamp installed locally.
func (p *Participant) AppliedTS() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied
}

// LockCount reports currently held locks (tests and stats).
func (p *Participant) LockCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.locks)
}

// --- coordinator ---

// Oracle supplies globally ordered timestamps (TiDB's placement-driver TSO;
// here the txn.Oracle).
type Oracle interface {
	Next() uint64
	Advance(ts uint64)
}

// Coordinator drives distributed commits. It is stateless across
// transactions and safe for concurrent use.
type Coordinator struct {
	cluster *cluster.Cluster
	oracle  Oracle
	// participantAt returns the leader-local participant of a partition,
	// used to read prepare verdicts after a proposal applies.
	participantAt func(part int) *Participant

	mu      sync.Mutex
	nextTxn uint64
}

// NewCoordinator builds a coordinator over the cluster.
func NewCoordinator(c *cluster.Cluster, o Oracle, participantAt func(part int) *Participant) *Coordinator {
	return &Coordinator{cluster: c, oracle: o, participantAt: participantAt}
}

// Commit runs the protocol for a write set captured at startTS. It returns
// the commit timestamp.
func (c *Coordinator) Commit(startTS uint64, muts []cluster.Mutation) (uint64, error) {
	if len(muts) == 0 {
		return startTS, nil
	}
	c.mu.Lock()
	c.nextTxn++
	txnID := c.nextTxn
	c.mu.Unlock()

	byPart := make(map[int][]cluster.Mutation)
	for _, m := range muts {
		pid := c.cluster.Route(m.Table, m.Key).ID
		byPart[pid] = append(byPart[pid], m)
	}

	// Fast path: a single participant commits in one Raft round.
	if len(byPart) == 1 {
		for pid, ms := range byPart {
			commitTS := c.oracle.Next()
			if err := c.cluster.Partitions[pid].Propose(EncodeOneShot(txnID, startTS, commitTS, ms)); err != nil {
				return 0, err
			}
			verdict, ok := c.participantAt(pid).Verdict(txnID)
			if !ok {
				// The verdict was consumed on another replica (leader moved
				// between apply and read); treat as success because commit
				// application is idempotent and validation is deterministic.
				verdict = nil
			}
			if verdict != nil {
				return 0, verdict
			}
			c.oracle.Advance(commitTS)
			return commitTS, nil
		}
	}

	// Phase 1: PREPARE everywhere, in parallel.
	type prepRes struct {
		pid int
		err error
	}
	results := make(chan prepRes, len(byPart))
	for pid, ms := range byPart {
		go func(pid int, ms []cluster.Mutation) {
			err := c.cluster.Partitions[pid].Propose(EncodePrepare(Prepare{TxnID: txnID, StartTS: startTS, Muts: ms}))
			if err == nil {
				if v, ok := c.participantAt(pid).Verdict(txnID); ok {
					err = v
				}
			}
			results <- prepRes{pid, err}
		}(pid, ms)
	}
	var prepErr error
	for range byPart {
		if r := <-results; r.err != nil && prepErr == nil {
			prepErr = r.err
		}
	}

	// Phase 2: COMMIT or ABORT everywhere, in parallel.
	var cmd raft.Command
	var commitTS uint64
	if prepErr == nil {
		commitTS = c.oracle.Next()
		cmd = EncodeCommit(txnID, commitTS)
	} else {
		cmd = EncodeAbort(txnID)
	}
	done := make(chan error, len(byPart))
	for pid := range byPart {
		go func(pid int) { done <- c.cluster.Partitions[pid].Propose(cmd) }(pid)
	}
	for range byPart {
		if err := <-done; err != nil && prepErr == nil {
			prepErr = err
		}
	}
	if prepErr != nil {
		return 0, prepErr
	}
	c.oracle.Advance(commitTS)
	return commitTS, nil
}
