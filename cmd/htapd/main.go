// Command htapd serves one HTAP storage architecture over the wire
// protocol. It loads the CH-benCHmark dataset, listens for remote
// drivers (cmd/chbench -remote), and drains gracefully on SIGTERM:
// workload listener first, metrics endpoint last, so the final counter
// values stay scrapeable while connections wind down.
//
//	htapd -arch a -warehouses 2 -addr 127.0.0.1:4466 -metrics 127.0.0.1:9090
//	htapd -arch b -olap-rate 50          # shed OLAP bursts beyond 50 qps
//
// Distributed topologies (internal/dist):
//
//	htapd -arch a -shards 3              # coordinator over 3 in-process shards
//	htapd -arch a -warehouses 6 -shard-index 0 -shard-count 3   # one shard server
//	htapd -warehouses 6 -shard-addrs 127.0.0.1:5001,127.0.0.1:5002,127.0.0.1:5003
//	                                     # coordinator over remote shard servers
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"htap/internal/ch"
	"htap/internal/client"
	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/dist"
	"htap/internal/exec"
	"htap/internal/experiments"
	"htap/internal/obs"
	"htap/internal/server"
)

func main() {
	var (
		arch       = flag.String("arch", "a", "architecture: a|b|c|d")
		addr       = flag.String("addr", "127.0.0.1:4466", "listen address (port 0 picks a free port)")
		warehouses = flag.Int("warehouses", 2, "warehouses")
		oltpRate   = flag.Float64("oltp-rate", 0, "OLTP admissions/sec (0 = unlimited)")
		olapRate   = flag.Float64("olap-rate", 0, "OLAP admissions/sec (0 = unlimited)")
		maxWait    = flag.Duration("max-wait", 100*time.Millisecond, "admission queue bound; longer waits shed")
		memBudget  = flag.Int64("mem-budget", 0, "analytical memory budget in bytes, node-wide and per-query (0 = unbounded); queries spill to disk beyond it and OLAP admissions shed near it")
		drainWait  = flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM")
		seed       = flag.Int64("seed", 42, "seed")
		metrics    = flag.String("metrics", "", "serve /metrics, /spans, /slowlog and /debug/pprof on this address")
		slowlog    = flag.Int("slowlog", 8, "worst queries retained per class in the slow-query log (/slowlog)")
		shards     = flag.Int("shards", 1, "front N in-process instances of -arch with the distributed coordinator, sharded by warehouse")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated shard server addresses; serve a coordinator over remote shards (skips local loading)")
		shardIndex = flag.Int("shard-index", -1, "serve one shard of a multi-server deployment: load only the warehouse slice this index owns (requires -shard-count)")
		shardCount = flag.Int("shard-count", 0, "total shard servers for -shard-index")
	)
	flag.Parse()

	obs.DefaultSlowLog.SetPerClass(*slowlog)

	var mSrv *obs.Server
	if *metrics != "" {
		var err error
		mSrv, err = obs.Serve(*metrics, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics: http://%s/metrics\n", mSrv.Addr())
	}

	var a core.Arch
	switch strings.ToLower(*arch) {
	case "a":
		a = core.ArchA
	case "b":
		a = core.ArchB
	case "c":
		a = core.ArchC
	case "d":
		a = core.ArchD
	default:
		fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *arch)
		os.Exit(2)
	}

	scale := ch.BenchScale(*warehouses)
	scale.Seed = *seed

	// e is closed by the drain sequence below. Three topologies:
	// a single local engine (optionally loading just its -shard-index
	// warehouse slice), a coordinator over -shards in-process engines, or a
	// coordinator over -shard-addrs remote servers.
	var (
		e    core.Engine
		meta map[string]int64
	)
	switch {
	case *shardAddrs != "":
		if *shards > 1 || *shardIndex >= 0 {
			fmt.Fprintln(os.Stderr, "-shard-addrs excludes -shards and -shard-index")
			os.Exit(2)
		}
		addrs := strings.Split(*shardAddrs, ",")
		eps := make([]client.Endpoint, len(addrs))
		for i, sa := range addrs {
			eps[i] = client.Endpoint{Name: fmt.Sprintf("shard-%d", i), Addr: strings.TrimSpace(sa)}
		}
		pool, err := client.ConnectEndpoints(context.Background(), eps, client.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d, err := dist.NewRemote(*warehouses, pool)
		if err != nil {
			pool.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e = d
		// Shard servers loaded the data; advertise shard 0's dataset meta
		// with the history-key watermark taken across all shards, so remote
		// drivers allocate Payment history keys above every slice.
		meta = map[string]int64{}
		for i, name := range pool.Names() {
			m := pool.Get(name).Meta()
			if i == 0 {
				for k, v := range m {
					meta[k] = v
				}
			} else if m["hkey"] > meta["hkey"] {
				meta["hkey"] = m["hkey"]
			}
		}
		fmt.Printf("coordinating %d remote shards\n", len(addrs))

	case *shards > 1:
		if *shardIndex >= 0 {
			fmt.Fprintln(os.Stderr, "-shards excludes -shard-index")
			os.Exit(2)
		}
		engines := make([]core.Engine, *shards)
		for i := range engines {
			engines[i] = experiments.NewEngine(a)
		}
		d, err := dist.New(*warehouses, engines...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		e = d

	default:
		e = experiments.NewEngine(a)
	}

	if *shardAddrs == "" {
		load := e
		if *shardIndex >= 0 {
			var err error
			load, err = dist.PartitionLoad(e, *warehouses, *shardIndex, *shardCount)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("shard %d/%d: loading owned warehouse slice only\n", *shardIndex, *shardCount)
		}
		fmt.Printf("loading CH-benCHmark data (%d warehouses) into %s...\n", *warehouses, e.Name())
		n, err := ch.NewGenerator(scale).Load(load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded %d rows\n", n)
	}

	// Bounded-memory execution: spills pay realistic (cost-charged) disk
	// latency, and the server sheds new OLAP admissions as the node budget
	// fills (see server.Config.MemShedPressure).
	var gov *exec.Governor
	if *memBudget > 0 {
		gov = exec.NewGovernor(*memBudget, disk.New(disk.DefaultConfig()))
		gov.SetQueryLimit(*memBudget)
		e.(core.MemGoverned).SetMemGovernor(gov)
		fmt.Printf("memory governor: %d byte budget\n", *memBudget)
	}

	// The handshake advertises the dataset scale and the history-key
	// watermark: remote drivers rebuild their client-side directories from
	// the scale and allocate Payment history keys above the watermark.
	// (A remote coordinator already assembled meta from its shards.)
	if meta == nil {
		meta = map[string]int64{
			"warehouses": int64(scale.Warehouses),
			"districts":  int64(scale.Districts),
			"customers":  int64(scale.Customers),
			"orders":     int64(scale.Orders),
			"items":      int64(scale.Items),
			"suppliers":  int64(scale.Suppliers),
			"seed":       scale.Seed,
			"skew_milli": int64(scale.Skew * 1000),
			"hkey":       ch.HistoryKeyWatermark(),
		}
	}

	// Online rebalancing admin surface: a coordinator over in-process
	// shards accepts POST /rebalance?lo=&hi=&dest= on the metrics
	// listener (and the same operation over the wire as MsgRebalance).
	if d, ok := e.(*dist.Engine); ok && mSrv != nil {
		mSrv.Handle("/rebalance", rebalanceHandler(d))
		fmt.Printf("rebalance admin: POST http://%s/rebalance?lo=&hi=&dest=\n", mSrv.Addr())
	}

	srv, err := server.Serve(*addr, server.Config{
		Engine: e, Meta: meta,
		OLTPRate: *oltpRate, OLAPRate: *olapRate, MaxWait: *maxWait,
		MemGov: gov,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving %s on %s\n", e.Name(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	// Drain sequence: stop accepting and finish in-flight requests, close
	// the engine, and only then stop the metrics endpoint — its last
	// scrape shows the completed drain.
	fmt.Println("draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
	}
	e.Close()
	if mSrv != nil {
		_ = mSrv.Shutdown(ctx)
	}
	fmt.Println("bye")
}

// rebalanceHandler serves POST /rebalance?lo=&hi=&dest=: move warehouses
// [lo, hi] to shard dest. The response reports rows moved and the new
// routing version. Not idempotent — a failed request must be inspected,
// not blindly retried.
func rebalanceHandler(d *dist.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		lo, err1 := strconv.Atoi(q.Get("lo"))
		hi, err2 := strconv.Atoi(q.Get("hi"))
		dest, err3 := strconv.Atoi(q.Get("dest"))
		if err1 != nil || err2 != nil || err3 != nil {
			http.Error(w, "need integer lo, hi, dest", http.StatusBadRequest)
			return
		}
		moved, version, err := d.MoveRange(r.Context(), lo, hi, dest)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(w, "{\"moved\": %d, \"route_version\": %d}\n", moved, version)
	})
}
