// Command repro regenerates the paper's artifacts as measured tables:
//
//	repro -exp fig1      # Figure 1: the four storage architectures
//	repro -exp table1    # Table 1: architecture classification, measured
//	repro -exp table2    # Table 2: all five technique families, measured
//	repro -exp tradeoff  # §2.3(2): isolation vs freshness sweep
//	repro -exp micro     # §2.3: ADAPT and HAP micro-benchmarks
//	repro -exp all       # everything (default)
//
// Expected shapes from the paper are printed alongside each table; see
// EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"htap/internal/experiments"
	"htap/internal/micro"
	"htap/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig1|table1|table2|table2-tp|table2-ap|table2-ds|table2-qo|table2-rs|tradeoff|micro|extensions|all")
		warehouses = flag.Int("warehouses", 4, "CH-benCHmark warehouses")
		duration   = flag.Duration("duration", 400*time.Millisecond, "measurement window per data point")
		seed       = flag.Int64("seed", 42, "workload seed")
		metrics    = flag.String("metrics", "", "serve /metrics, /spans and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		selfcheck  = flag.Bool("metrics-selfcheck", false, "after the run, scrape own /metrics and fail on empty, malformed, or all-zero output (requires -metrics); CI smoke uses this")
	)
	flag.Parse()
	o := experiments.Opts{Warehouses: *warehouses, Duration: *duration, Seed: *seed}

	var srv *obs.Server
	if *metrics != "" {
		var err error
		srv, err = obs.Serve(*metrics, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}
	if *selfcheck && srv == nil {
		fmt.Fprintln(os.Stderr, "-metrics-selfcheck requires -metrics")
		os.Exit(2)
	}

	run := map[string]func(experiments.Opts){
		"fig1":       fig1,
		"table1":     table1,
		"table2-tp":  table2TP,
		"table2-ap":  table2AP,
		"table2-ds":  table2DS,
		"table2-qo":  table2QO,
		"table2-rs":  table2RS,
		"tradeoff":   tradeoff,
		"micro":      microBench,
		"extensions": extensions,
	}
	switch *exp {
	case "all":
		for _, name := range []string{
			"fig1", "table1", "table2-tp", "table2-ap", "table2-ds",
			"table2-qo", "table2-rs", "tradeoff", "micro", "extensions",
		} {
			run[name](o)
		}
	case "table2":
		for _, name := range []string{"table2-tp", "table2-ap", "table2-ds", "table2-qo", "table2-rs"} {
			run[name](o)
		}
	default:
		fn, ok := run[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
		fn(o)
	}

	if *selfcheck {
		if err := metricsSelfCheck(srv.Addr()); err != nil {
			fmt.Fprintln(os.Stderr, "metrics selfcheck failed:", err)
			os.Exit(1)
		}
		fmt.Println("metrics selfcheck: ok")
	}
}

// metricsSelfCheck scrapes the process's own /metrics endpoint and verifies
// the exposition parses and records real engine activity. It is the CI
// smoke gate: a refactor that silently disconnects instrumentation fails
// here rather than producing an empty-but-200 scrape forever.
func metricsSelfCheck(addr string) error {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned status %d", resp.StatusCode)
	}
	n, err := obs.ValidateExposition(body)
	if err != nil {
		return err
	}
	// At least one architecture must have committed transactions: the
	// counter survives engine teardown, unlike the per-engine gauges.
	committed := false
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "htap_engine_txn_commits_total") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 && strings.TrimSpace(line[i+1:]) != "0" {
			committed = true
			break
		}
	}
	if !committed {
		return fmt.Errorf("no non-zero htap_engine_txn_commits_total series in %d samples", n)
	}
	return nil
}

func header(title, expect string) {
	fmt.Printf("\n=== %s ===\n", title)
	if expect != "" {
		fmt.Printf("paper expects: %s\n\n", expect)
	}
}

func fig1(o experiments.Opts) {
	header("Figure 1 — storage architectures", "")
	fmt.Print(experiments.FormatFig1(experiments.Fig1(o)))
}

func table1(o experiments.Opts) {
	header("Table 1 — architecture classification",
		"TP tput A>{B,C}; AP tput {A,D} high; B scales best; B most isolated; {A,C,D} freshest in shared mode")
	fmt.Print(experiments.FormatTable1(experiments.Table1(o)))
}

func table2TP(o experiments.Opts) {
	header("Table 2 — transaction processing",
		"MVCC+Logging: high efficiency / low scalability; 2PC+Raft+Logging: the reverse")
	fmt.Print(experiments.FormatTable2TP(experiments.Table2TP(o)))
}

func table2AP(o experiments.Opts) {
	header("Table 2 — analytical processing",
		"in-memory delta scan: fresh but memory-hungry; log delta scan: fresh but slow (I/O); column scan: fast but stale")
	fmt.Print(experiments.FormatTable2AP(experiments.Table2AP(o)))
}

func table2DS(o experiments.Opts) {
	header("Table 2 — data synchronization",
		"in-memory merge: cheap; log merge: high merge cost (I/O); rebuild: small steady memory, high load cost")
	fmt.Print(experiments.FormatTable2DS(experiments.Table2DS(o)))
}

func table2QO(o experiments.Opts) {
	header("Table 2 — query optimization: column selection",
		"utility grows with budget; decayed (learned-lite) adapts to shifts")
	fmt.Print(experiments.FormatTable2QOColSel(experiments.Table2QOColSel(o)))
	header("Table 2 — query optimization: hybrid row/column scan",
		"hybrid beats row-only and is competitive with column-only on the selective SPJ")
	fmt.Print(experiments.FormatTable2QOHybrid(experiments.Table2QOHybrid(o)))
	header("Table 2 — query optimization: CPU/GPU placement",
		"GPU-only: high AP / low TP; CPU-only: the reverse; hybrid: both high")
	fmt.Print(experiments.FormatTable2QOAccel(experiments.Table2QOAccel(o)))
}

func table2RS(o experiments.Opts) {
	header("Table 2 — resource scheduling",
		"workload-driven: high throughput / low freshness; freshness-driven: the reverse; adaptive: balances both")
	fmt.Print(experiments.FormatTable2RS(experiments.Table2RS(o)))
}

func tradeoff(o experiments.Opts) {
	header("§2.3(2) — isolation vs freshness",
		"shorter sync periods buy freshness with throughput (on this substrate the cost lands mostly on AP)")
	fmt.Print(experiments.FormatTradeoff(experiments.Tradeoff(o, nil)))
}

func extensions(o experiments.Opts) {
	header("§2.4 — implemented extensions",
		"skew concentrates volume; correlation collapses nations-per-warehouse; the in-process txn pays for its embedded aggregate")
	fmt.Print(experiments.FormatExtensions(experiments.Extensions(o)))
}

func microBench(o experiments.Opts) {
	header("§2.3 — ADAPT micro-benchmark",
		"columns win narrow projections; rows win point ops; hybrid wins both")
	fmt.Print(experiments.FormatADAPT(micro.RunADAPT(50_000, 16, []float64{0.0625, 0.25, 1.0}, 2000)))
	header("§2.3 — HAP micro-benchmark",
		"row layout gains as the update fraction grows")
	fmt.Print(experiments.FormatHAP(micro.RunHAP(5_000, 8, 60, []float64{0.0, 0.5, 1.0})))
}
