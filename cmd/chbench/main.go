// Command chbench runs the CH-benCHmark (or the HTAPBench pacing rule)
// against any of the four architectures, in-process or over the network:
//
//	chbench -arch a -warehouses 4 -tp 4 -ap 2 -duration 5s
//	chbench -arch b -target-tpmc 6000 -duration 10s   # HTAPBench rule
//	chbench -remote 127.0.0.1:4466 -duration 5s       # against htapd
//
// In remote mode the dataset scale comes from the server's handshake;
// analytical queries execute server-side and only their results cross
// the wire. It prints tpmC, QphH, latencies and freshness, the metrics
// of §2.3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"htap/internal/ch"
	"htap/internal/client"
	"htap/internal/core"
	"htap/internal/disk"
	"htap/internal/exec"
	"htap/internal/experiments"
	"htap/internal/htapbench"
	"htap/internal/obs"
)

func main() {
	var (
		arch       = flag.String("arch", "a", "architecture: a|b|c|d")
		warehouses = flag.Int("warehouses", 2, "warehouses")
		tp         = flag.Int("tp", 4, "OLTP workers")
		ap         = flag.Int("ap", 2, "OLAP streams")
		duration   = flag.Duration("duration", 2*time.Second, "run duration")
		target     = flag.Float64("target-tpmc", 0, "HTAPBench rule: pace OLTP to this tpmC (0 = unthrottled)")
		syncEvery  = flag.Duration("sync", 50*time.Millisecond, "background sync interval (0 = none)")
		seed       = flag.Int64("seed", 42, "seed")
		metrics    = flag.String("metrics", "", "serve /metrics, /spans and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		remote     = flag.String("remote", "", "run against an htapd server at this address instead of in-process")
		memBudget  = flag.Int64("mem-budget", 0, "per-query analytical memory budget in bytes (0 = unbounded); in-process only — remote queries use the server's budget")
		profile    = flag.Bool("profile", false, "profile analytical queries: per-class attributed p99 breakdown plus the slowest query's EXPLAIN ANALYZE plan (propagated to the server in remote mode)")
	)
	flag.Parse()

	if *metrics != "" {
		srv, err := obs.Serve(*metrics, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}

	var engine htapbench.Engine
	var scale ch.Scale
	var local core.Engine
	archName := ""

	if *remote != "" {
		r, err := client.Connect(context.Background(), *remote, client.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer r.Close()
		meta := r.Meta()
		scale = ch.Scale{
			Warehouses: int(meta["warehouses"]), Districts: int(meta["districts"]),
			Customers: int(meta["customers"]), Orders: int(meta["orders"]),
			Items: int(meta["items"]), Suppliers: int(meta["suppliers"]),
			Seed: meta["seed"], Skew: float64(meta["skew_milli"]) / 1000,
		}
		// Keep client-side Payment history keys clear of the server's
		// generated rows.
		ch.BumpHistoryKey(meta["hkey"])
		engine = r
		archName = fmt.Sprintf("%v at %s", r.Arch(), *remote)
		fmt.Printf("connected to %s (%d warehouses)\n", archName, scale.Warehouses)
	} else {
		var a core.Arch
		switch strings.ToLower(*arch) {
		case "a":
			a = core.ArchA
		case "b":
			a = core.ArchB
		case "c":
			a = core.ArchC
		case "d":
			a = core.ArchD
		default:
			fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *arch)
			os.Exit(2)
		}

		e := experiments.NewEngine(a)
		defer e.Close()
		scale = ch.BenchScale(*warehouses)
		fmt.Printf("loading CH-benCHmark data (%d warehouses) into %s...\n", *warehouses, e.Name())
		n, err := ch.NewGenerator(scale).Load(e)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded %d rows\n", n)
		engine = e
		local = e
		archName = fmt.Sprintf("%v (%s)", a, e.Name())
	}

	var gov *exec.Governor
	if *memBudget > 0 {
		if local == nil {
			fmt.Fprintln(os.Stderr, "-mem-budget applies in-process only; set it on htapd for remote runs")
			os.Exit(2)
		}
		gov = exec.NewGovernor(*memBudget, disk.New(disk.DefaultConfig()))
		gov.SetQueryLimit(*memBudget)
		local.(core.MemGoverned).SetMemGovernor(gov)
		fmt.Printf("memory governor: %d byte per-query budget\n", *memBudget)
	}

	res := htapbench.Run(htapbench.Config{
		Engine: engine, Scale: scale,
		TPWorkers: *tp, APStreams: *ap,
		Duration: *duration, TargetTpmC: *target,
		SyncInterval: *syncEvery, Seed: *seed,
		Profile: *profile,
	})

	rule := "CH-benCHmark (unthrottled)"
	if *target > 0 {
		rule = fmt.Sprintf("HTAPBench (paced to %.0f tpmC)", *target)
	}
	fmt.Printf("\nexecution rule: %s\narchitecture:   %s\n\n", rule, archName)
	fmt.Printf("%-22s %12.0f\n", "tpmC (New-Order/min)", res.TpmC)
	fmt.Printf("%-22s %12.0f\n", "TPS (all txns/sec)", res.TPS)
	fmt.Printf("%-22s %12.0f\n", "QphH (queries/hour)", res.QphH)
	fmt.Printf("%-22s %12d\n", "transactions", res.Txns)
	fmt.Printf("%-22s %12d\n", "queries", res.Queries)
	fmt.Printf("%-22s %12d\n", "txn errors", res.TxnErrors)
	fmt.Printf("%-22s %12d\n", "query errors/sheds", res.QueryErrors)
	fmt.Printf("%-22s %12s\n", "avg txn latency", res.AvgTxnLatency.Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "avg query latency", res.AvgQueryLatency.Round(time.Microsecond))
	fmt.Printf("%-22s %12.1f\n", "avg freshness lag", res.FreshAvgLagTS)
	fmt.Printf("%-22s %12s\n", "max freshness lag", res.FreshMaxLagTime.Round(time.Millisecond))
	if *remote == "" {
		// Late-materialization accounting is process-local; in remote mode
		// the scans (and their counters) live in the server.
		fmt.Printf("%-22s %12d\n", "pushdown rows scanned", res.PushdownScannedRows)
		fmt.Printf("%-22s %12d\n", "rows materialized", res.PushdownMaterializedRows)
		fmt.Printf("%-22s %12.0f\n", "rows matzd per query", res.RowsMaterializedPerQuery)
	}
	printClasses("transaction class", res.TxnClasses)
	printClasses("query class", res.QueryClasses)
	if *profile {
		printBreakdown(res.QueryBreakdown)
		if res.SlowestProfile != "" {
			fmt.Printf("\nslowest query: %s (%s)\n%s",
				res.SlowestClass, res.SlowestDur.Round(time.Microsecond), res.SlowestProfile)
		}
	}
	if local != nil {
		st := local.Stats()
		fmt.Printf("\nengine: commits=%d aborts=%d conflicts=%d merges=%d colBytes=%d\n",
			st.Commits, st.Aborts, st.Conflicts, st.Merges, st.ColBytes)
	}
	if gov != nil {
		fmt.Printf("memory: peak=%dB spills=%d spillBytes=%d spillReads=%d overBudget=%d liveFiles=%d\n",
			gov.MaxQueryPeak(), gov.Spills(), gov.SpillBytes(), gov.SpillReadBytes(), gov.OverBudget(), gov.LiveSpillFiles())
	}
}

// printBreakdown renders the attributed per-class p99 split (-profile).
func printBreakdown(classes []htapbench.ClassBreakdown) {
	if len(classes) == 0 {
		return
	}
	fmt.Printf("\n%-14s %10s %12s %12s %12s\n", "query class", "count", "admit p99", "exec p99", "spill p99")
	for _, c := range classes {
		fmt.Printf("%-14s %10d %12s %12s %12s\n", c.Class, c.Count,
			c.AdmitP99.Round(time.Microsecond), c.ExecP99.Round(time.Microsecond), c.SpillP99.Round(time.Microsecond))
	}
}

// printClasses renders one per-class latency-percentile table.
func printClasses(title string, classes []htapbench.ClassLatency) {
	if len(classes) == 0 {
		return
	}
	fmt.Printf("\n%-14s %10s %12s %12s %12s\n", title, "count", "p50", "p95", "p99")
	for _, c := range classes {
		fmt.Printf("%-14s %10d %12s %12s %12s\n", c.Class, c.Count,
			c.P50.Round(time.Microsecond), c.P95.Round(time.Microsecond), c.P99.Round(time.Microsecond))
	}
}
