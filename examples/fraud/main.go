// Fraud: the paper's second motivating case — "vendors can leverage an
// HTAP system to process the customer transactions efficiently while
// detecting the fraudulent transactions simultaneously" (§1).
//
// Payments stream into the TiDB-style distributed engine (architecture B);
// a detector concurrently scans the history table on the columnar learner
// replicas for suspicious velocity — many payments from one customer in a
// short window — without ever touching the row-store voters that serve the
// payment traffic. That is the workload-isolation property Table 1 credits
// to this architecture.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"htap"
)

func main() {
	engine := htap.NewEngineB(htap.ConfigB{
		Schemas: htap.CHSchemas(), Partitions: 2, VotersPer: 3, LearnersPer: 1,
		MergeInterval: 20 * time.Millisecond,
	})
	defer engine.Close()

	scale := htap.CHSmallScale(1)
	scale.Customers = 50
	gen := htap.NewCHGenerator(scale)
	if _, err := gen.Load(engine); err != nil {
		log.Fatal(err)
	}
	driver := htap.NewCHDriver(engine, scale)

	// One customer goes rogue: a burst of payments, hidden in normal
	// traffic.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		deadline := time.Now().Add(900 * time.Millisecond)
		for time.Now().Before(deadline) {
			if rng.Intn(3) == 0 {
				// The rogue customer (w=1, d=1, c=7) pays again and again.
				if err := roguePayment(engine, 40+rng.Float64()); err != nil {
					log.Fatalf("rogue payment: %v", err)
				}
			} else if err := driver.RunOne(context.Background(), rng); err != nil {
				log.Fatalf("payment stream: %v", err)
			}
		}
	}()

	// The detector scans learner replicas every 150ms.
	detector := func(round int) {
		rows := engine.Query(context.Background(), "history", []string{"h_c_key", "h_amount"}, nil).
			Agg([]string{"h_c_key"},
				htap.Agg{Kind: htap.Count, Name: "payments"},
				htap.Agg{Kind: htap.Sum, Expr: htap.Col("h_amount"), Name: "total"},
			).
			Filter(htap.Cmp(htap.GT, htap.Col("payments"), htap.ConstInt(5))).
			Sort(htap.SortKey{Col: "payments", Desc: true}).
			Limit(3).Run()
		fmt.Printf("detector sweep %d (on columnar learners): %d suspicious accounts\n", round, len(rows))
		for _, r := range rows {
			fmt.Printf("  customer key %-10d payments %-4d total %.2f\n",
				r[0].Int(), r[1].Int(), r[2].Float())
		}
	}
	for round := 1; round <= 5; round++ {
		time.Sleep(180 * time.Millisecond)
		detector(round)
	}
	wg.Wait()

	st := engine.Stats()
	fmt.Printf("\npayments committed: %d; learner disk reads during detection: %d\n",
		st.Commits, st.Disk.ReadOps)
	fmt.Println("detection ran on learner replicas only — OLTP never shared a data structure with it.")
}

// roguePayment runs a Payment-shaped transaction for the fixed rogue
// customer (warehouse 1, district 1, customer 7) through the public API.
func roguePayment(e htap.Engine, amount float64) error {
	cKey := htap.CHCustomerKey(1, 1, 7)
	return htap.Exec(context.Background(), e, func(tx htap.Tx) error {
		c, err := tx.Get("customer", cKey)
		if err != nil {
			return err
		}
		c = c.Clone()
		c[7] = htap.Float(c[7].Float() - amount) // balance
		c[8] = htap.Float(c[8].Float() + amount) // ytd payments
		c[9] = htap.Int(c[9].Int() + 1)          // payment count
		if err := tx.Update("customer", c); err != nil {
			return err
		}
		return tx.Insert("history", htap.Row{
			htap.Int(htap.CHNextHistoryKey()), htap.Int(cKey),
			htap.Int(1), htap.Int(1), htap.Int(0),
			htap.Float(amount), htap.String("rogue"),
		})
	})
}
