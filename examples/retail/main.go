// Retail: the paper's opening motivation — "entrepreneurs in retail
// applications can analyze the latest transaction data in real time and
// identify the sales trend, then take timely actions" (§1).
//
// A stream of New-Order and Payment transactions runs against the
// CH-benCHmark schema while an analyst repeatedly asks for the current
// top-selling items and per-district revenue. The analytical answers keep
// moving while the OLTP stream runs, with no export step in between.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"htap"
)

func main() {
	engine := htap.New(htap.ArchA, htap.CHSchemas())
	defer engine.Close()

	scale := htap.CHSmallScale(2)
	scale.Customers = 100
	scale.Orders = 100
	scale.Items = 300
	gen := htap.NewCHGenerator(scale)
	n, err := gen.Load(engine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows of retail data (2 warehouses)\n\n", n)

	driver := htap.NewCHDriver(engine, scale)
	rng := rand.New(rand.NewSource(7))

	// Sales trend: revenue and units per item over all order lines,
	// expressed once and re-run against live data.
	trend := func() {
		rows := engine.Query(context.Background(), "orderline", []string{"ol_i_id", "ol_amount", "ol_quantity"}, nil).
			Agg([]string{"ol_i_id"},
				htap.Agg{Kind: htap.Sum, Expr: htap.Col("ol_amount"), Name: "revenue"},
				htap.Agg{Kind: htap.Sum, Expr: htap.Col("ol_quantity"), Name: "units"},
			).
			Sort(htap.SortKey{Col: "revenue", Desc: true}).
			Limit(3).Run()
		fmt.Println("  top items by revenue right now:")
		for _, r := range rows {
			fmt.Printf("    item %-6d revenue %10.2f  units %d\n",
				r[0].Int(), r[1].Float(), r[2].Int())
		}
	}

	districts := func() {
		rows := engine.Query(context.Background(), "district", []string{"d_w_id", "d_ytd"}, nil).
			Agg([]string{"d_w_id"},
				htap.Agg{Kind: htap.Sum, Expr: htap.Col("d_ytd"), Name: "ytd"},
			).
			Sort(htap.SortKey{Col: "d_w_id"}).Run()
		fmt.Println("  year-to-date revenue by warehouse:")
		for _, r := range rows {
			fmt.Printf("    warehouse %d: %.2f\n", r[0].Int(), r[1].Float())
		}
	}

	for round := 1; round <= 3; round++ {
		// A burst of live business: orders and payments.
		start := time.Now()
		txns := 0
		for time.Since(start) < 300*time.Millisecond {
			if err := driver.RunOne(context.Background(), rng); err != nil {
				log.Fatalf("transaction failed: %v", err)
			}
			txns++
		}
		fmt.Printf("round %d: ran %d transactions, analyzing in place:\n", round, txns)
		trend()
		districts()
		fmt.Printf("  freshness lag: %d commits\n\n", engine.Freshness().LagTS)
	}
	fmt.Println("the trend shifted between rounds without any ETL step — that is HTAP.")
}
