// Scheduling: the paper's §2.2(5) — resource scheduling balances the
// trade-off between workload isolation and data freshness by moving
// workers between OLTP and OLAP and switching execution modes.
//
// The same bursty mixed workload runs three times on architecture A, once
// under each controller: workload-driven (HANA/Siper: follow demand,
// ignore freshness), freshness-driven (RDE: switch modes when staleness
// crosses a bound), and the adaptive controller combining both (the
// paper's §2.4 open problem).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"htap"
	"htap/internal/ch"
	"htap/internal/sched"
)

func main() {
	controllers := []sched.Controller{
		sched.WorkloadDriven{Total: 4},
		sched.FreshnessDriven{Total: 4, MaxLag: 20},
		sched.Adaptive{Total: 4, MaxLag: 20},
	}
	fmt.Printf("%-20s %10s %10s %12s %7s\n", "controller", "txn/s", "q/s", "avg lag", "syncs")
	for _, ctrl := range controllers {
		tps, qps, lag, syncs := run(ctrl)
		fmt.Printf("%-20s %10.0f %10.1f %12.1f %7d\n", ctrl.Name(), tps, qps, lag, syncs)
	}
	fmt.Println("\nworkload-driven maximizes throughput but lets staleness grow;")
	fmt.Println("freshness-driven caps staleness at the cost of throughput;")
	fmt.Println("adaptive restores freshness by merging instead of sharing scans.")
}

func run(ctrl sched.Controller) (tps, qps, avgLag float64, syncs int64) {
	engine := htap.New(htap.ArchA, htap.CHSchemas())
	defer engine.Close()
	scale := htap.CHSmallScale(2)
	if _, err := htap.NewCHGenerator(scale).Load(engine); err != nil {
		log.Fatal(err)
	}
	engine.SetMode(sched.Isolated)
	driver := ch.NewDriver(engine, scale)
	queries := ch.Queries()

	rngs := make(chan *rand.Rand, 8)
	for i := 0; i < 8; i++ {
		rngs <- rand.New(rand.NewSource(int64(i)))
	}
	pool := sched.NewPool(
		func() bool {
			r := <-rngs
			err := driver.RunOne(context.Background(), r)
			rngs <- r
			return err == nil
		},
		func() bool {
			queries[6](ch.Bind(context.Background(), engine))
			return true
		},
	)
	defer pool.Stop()

	decision := ctrl.Decide(sched.Signals{}, sched.Decision{})
	pool.Resize(decision.TPWorkers, decision.APWorkers)
	engine.SetMode(decision.Mode)

	var txns, qs int64
	var lagSum float64
	const epochs = 30
	start := time.Now()
	for ep := 0; ep < epochs; ep++ {
		time.Sleep(25 * time.Millisecond)
		tp, apc := pool.Completed()
		txns += tp
		qs += apc
		snap := engine.Freshness()
		lagSum += float64(snap.LagTS)
		// Demand bursts: even epochs are OLTP-heavy, odd ones OLAP-heavy.
		tpDemand, apDemand := tp*3+1, apc+1
		if ep%2 == 1 {
			tpDemand, apDemand = tp+1, apc*3+1
		}
		decision = ctrl.Decide(sched.Signals{
			TPCompleted: tp, APCompleted: apc,
			TPDemand: tpDemand, APDemand: apDemand,
			LagTS: snap.LagTS, LagTime: snap.LagTime,
		}, decision)
		pool.Resize(decision.TPWorkers, decision.APWorkers)
		engine.SetMode(decision.Mode)
		if decision.SyncNow {
			engine.Sync()
			syncs++
		}
	}
	el := time.Since(start).Seconds()
	pool.Resize(0, 0)
	return float64(txns) / el, float64(qs) / el, lagSum / epochs, syncs
}
