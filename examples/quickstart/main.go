// Quickstart: build an HTAP engine, run transactions, and analyze the
// same data in place — no ETL, which is the whole point of HTAP (paper §1).
package main

import (
	"context"
	"fmt"
	"log"

	"htap"
)

func main() {
	// A tiny schema: one packed INT key plus typed attributes.
	orders := htap.NewSchema("orders", 0,
		htap.Column{Name: "id", Type: htap.IntType},
		htap.Column{Name: "customer", Type: htap.IntType},
		htap.Column{Name: "amount", Type: htap.FloatType},
		htap.Column{Name: "item", Type: htap.StringType},
	)

	// Architecture A: primary row store + in-memory column store.
	engine := htap.New(htap.ArchA, []*htap.Schema{orders})
	defer engine.Close()

	// OLTP: insert a few orders transactionally.
	for i := int64(1); i <= 5; i++ {
		i := i
		err := htap.Exec(context.Background(), engine, func(tx htap.Tx) error {
			return tx.Insert("orders", htap.Row{
				htap.Int(i), htap.Int(i % 2), htap.Float(float64(i) * 10), htap.String("widget"),
			})
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// A transactional read-modify-write with automatic conflict retries.
	err := htap.Exec(context.Background(), engine, func(tx htap.Tx) error {
		r, err := tx.Get("orders", 3)
		if err != nil {
			return err
		}
		r = r.Clone()
		r[2] = htap.Float(r[2].Float() + 5)
		return tx.Update("orders", r)
	})
	if err != nil {
		log.Fatal(err)
	}

	// OLAP: aggregate over the live data. The in-memory delta + column
	// scan sees the commits above immediately — freshness without ETL.
	rows := engine.Query(context.Background(), "orders", []string{"customer", "amount"}, nil).
		Agg([]string{"customer"},
			htap.Agg{Kind: htap.Sum, Expr: htap.Col("amount"), Name: "revenue"},
			htap.Agg{Kind: htap.Count, Name: "n"},
		).
		Sort(htap.SortKey{Col: "revenue", Desc: true}).
		Run()

	fmt.Println("revenue by customer (fresh, no ETL):")
	for _, r := range rows {
		fmt.Printf("  customer %d: %.2f across %d orders\n",
			r[0].Int(), r[1].Float(), r[2].Int())
	}

	snap := engine.Freshness()
	fmt.Printf("freshness: analytical view lags OLTP by %d commits\n", snap.LagTS)
}
