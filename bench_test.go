// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md's per-experiment index). Each benchmark runs the corresponding
// experiment and reports its headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the measured counterpart of the paper's qualitative cells.
// cmd/repro prints the same results as formatted tables.
package htap_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"htap/internal/accel"
	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/dist"
	"htap/internal/exec"
	"htap/internal/experiments"
	"htap/internal/htapbench"
	"htap/internal/micro"
	"htap/internal/obs"
)

// benchOpts sizes experiment benchmarks for repeatable sub-second windows.
func benchOpts() experiments.Opts {
	return experiments.Opts{Warehouses: 4, Duration: 200 * time.Millisecond, Seed: 42}
}

func loadedEngine(b *testing.B, a core.Arch) (core.Engine, ch.Scale) {
	b.Helper()
	e := experiments.NewEngine(a)
	s := ch.SmallScale(2)
	s.Customers = 60
	s.Orders = 60
	s.Items = 200
	if _, err := ch.NewGenerator(s).Load(e); err != nil {
		b.Fatal(err)
	}
	if c, ok := e.(*core.EngineC); ok {
		for _, sch := range ch.Schemas() {
			cols := make([]string, len(sch.Cols))
			for i, col := range sch.Cols {
				cols[i] = col.Name
			}
			c.LoadColumns(sch.Name, cols)
		}
	}
	e.Sync()
	return e, s
}

// --- F1: Figure 1 ---

// BenchmarkFig1Architectures runs the same mixed workload on each of the
// four storage architectures.
func BenchmarkFig1Architectures(b *testing.B) {
	for _, a := range []core.Arch{core.ArchA, core.ArchB, core.ArchC, core.ArchD} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			e, s := loadedEngine(b, a)
			defer e.Close()
			b.ResetTimer()
			var txns, queries int64
			for i := 0; i < b.N; i++ {
				res := htapbench.Run(htapbench.Config{
					Engine: e, Scale: s, TPWorkers: 2, APStreams: 1,
					Duration: 200 * time.Millisecond, QuerySet: []int{1, 6},
					SyncInterval: 50 * time.Millisecond, Seed: int64(i),
				})
				txns += res.Txns
				queries += res.Queries
			}
			el := b.Elapsed().Seconds()
			b.ReportMetric(float64(txns)/el, "txn/s")
			b.ReportMetric(float64(queries)/el, "query/s")
		})
	}
}

// --- T1: Table 1 ---

// BenchmarkTable1 measures every classification cell per architecture.
func BenchmarkTable1(b *testing.B) {
	for _, a := range []core.Arch{core.ArchA, core.ArchB, core.ArchC, core.ArchD} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			var last experiments.Table1Row
			for i := 0; i < b.N; i++ {
				rows := experiments.Table1(benchOpts())
				for _, r := range rows {
					if r.Arch == a {
						last = r
					}
				}
			}
			b.ReportMetric(last.TPThroughput, "tp-txn/s")
			b.ReportMetric(last.APThroughput, "ap-q/s")
			b.ReportMetric(last.TPSpeedup, "tp-speedup-x4")
			b.ReportMetric(last.IsolationPct, "isolation-%")
			b.ReportMetric(last.FreshLagMs, "fresh-lag-ms")
		})
	}
}

// --- T2.TP ---

// BenchmarkTable2TP compares MVCC+logging with 2PC+Raft+logging.
func BenchmarkTable2TP(b *testing.B) {
	var rows []experiments.TPRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2TP(benchOpts())
	}
	for _, r := range rows {
		b.ReportMetric(r.TPS1, r.Technique+"-tps@1")
		b.ReportMetric(r.Speedup, r.Technique+"-speedup")
	}
}

// --- T2.AP ---

// BenchmarkTable2AP compares the three analytical scan techniques.
func BenchmarkTable2AP(b *testing.B) {
	var rows []experiments.APRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2AP(benchOpts())
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.QueryLat.Microseconds()), r.Technique+"-µs")
	}
}

// --- T2.DS ---

// BenchmarkTable2DS compares the three data-synchronization techniques.
func BenchmarkTable2DS(b *testing.B) {
	var rows []experiments.DSRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2DS(benchOpts())
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MergeTime.Microseconds()), r.Technique+"-µs")
		b.ReportMetric(float64(r.LoadCost), r.Technique+"-rows")
	}
}

// --- T2.QO ---

// BenchmarkTable2QO covers column selection, hybrid scans, and CPU/GPU
// placement.
func BenchmarkTable2QO(b *testing.B) {
	b.Run("colsel", func(b *testing.B) {
		var rows []experiments.ColSelRow
		for i := 0; i < b.N; i++ {
			rows = experiments.Table2QOColSel(benchOpts())
		}
		for _, r := range rows {
			b.ReportMetric(r.Utility, fmt.Sprintf("%s@%d%%-utility", r.Policy, r.BudgetPct))
		}
	})
	b.Run("hybrid-scan", func(b *testing.B) {
		var rows []experiments.HybridRow
		for i := 0; i < b.N; i++ {
			rows = experiments.Table2QOHybrid(benchOpts())
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Latency.Microseconds()), r.Plan+"-µs")
		}
	})
	b.Run("cpu-gpu", func(b *testing.B) {
		var rows []experiments.AccelRow
		for i := 0; i < b.N; i++ {
			rows = experiments.Table2QOAccel(benchOpts())
		}
		for _, r := range rows {
			b.ReportMetric(r.TPRate, r.Placement.String()+"-tp/s")
			b.ReportMetric(r.APRate, r.Placement.String()+"-ap/s")
		}
	})
}

// --- T2.RS ---

// BenchmarkTable2RS compares the scheduling controllers.
func BenchmarkTable2RS(b *testing.B) {
	var rows []experiments.RSRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2RS(benchOpts())
	}
	for _, r := range rows {
		b.ReportMetric(r.TPS, r.Policy+"-txn/s")
		b.ReportMetric(r.FreshAvgTS, r.Policy+"-lag")
	}
}

// --- B1/B2: CH-benCHmark and HTAPBench rules ---

// BenchmarkCHMixed runs the unthrottled CH-benCHmark rule on architecture A.
func BenchmarkCHMixed(b *testing.B) {
	e, s := loadedEngine(b, core.ArchA)
	defer e.Close()
	b.ResetTimer()
	var tpmC, qphh float64
	for i := 0; i < b.N; i++ {
		res := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 2, APStreams: 2,
			Duration:     300 * time.Millisecond,
			SyncInterval: 50 * time.Millisecond, Seed: int64(i),
		})
		tpmC, qphh = res.TpmC, res.QphH
	}
	b.ReportMetric(tpmC, "tpmC")
	b.ReportMetric(qphh, "QphH")
}

// BenchmarkHTAPBench runs the paced HTAPBench rule: a fixed tpmC target,
// measuring the analytical throughput sustained beside it.
func BenchmarkHTAPBench(b *testing.B) {
	e, s := loadedEngine(b, core.ArchA)
	defer e.Close()
	b.ResetTimer()
	var qphh float64
	for i := 0; i < b.N; i++ {
		res := htapbench.Run(htapbench.Config{
			Engine: e, Scale: s, TPWorkers: 2, APStreams: 2,
			Duration: 300 * time.Millisecond, TargetTpmC: 6000,
			SyncInterval: 50 * time.Millisecond, Seed: int64(i),
		})
		qphh = res.QphH
	}
	b.ReportMetric(qphh, "QphH@6000tpmC")
}

// BenchmarkCHQueries times each of the 22 analytical queries on a loaded
// architecture-A engine.
func BenchmarkCHQueries(b *testing.B) {
	e, _ := loadedEngine(b, core.ArchA)
	defer e.Close()
	qs := ch.Queries()
	for i := 1; i <= 22; i++ {
		q := qs[i]
		b.Run(fmt.Sprintf("Q%02d", i), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				q(ch.Bind(context.Background(), e))
			}
		})
	}
}

// BenchmarkParallelOperators pins the degree of parallelism explicitly
// (rather than inheriting GOMAXPROCS) and times the morsel-driven scan →
// aggregate pipeline (Q1), the selective scan (Q6), and the join-heavy
// plan (Q12) at DOP 1 and 4. Run with
//
//	go test -run='^$' -bench=BenchmarkParallelOperators -count=2 -cpu=1,4 .
//
// to cross DOP with scheduler width; on a single-core host DOP>1 measures
// partitioning overhead, not speedup (see BENCH_parallel.json).
func BenchmarkParallelOperators(b *testing.B) {
	e, _ := loadedEngine(b, core.ArchA)
	defer e.Close()
	qs := ch.Queries()
	for _, qn := range []int{1, 6, 12} {
		for _, dop := range []int{1, 4} {
			q := qs[qn]
			b.Run(fmt.Sprintf("Q%02d/dop=%d", qn, dop), func(b *testing.B) {
				e.(core.Paralleler).SetParallelism(dop)
				defer e.(core.Paralleler).SetParallelism(0) // restore GOMAXPROCS default
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					q(ch.Bind(context.Background(), e))
				}
			})
		}
	}
}

// BenchmarkTPCC times each TPC-C transaction type on architecture A.
func BenchmarkTPCC(b *testing.B) {
	e, s := loadedEngine(b, core.ArchA)
	defer e.Close()
	d := ch.NewDriver(e, s)
	rng := rand.New(rand.NewSource(1))
	cases := map[string]func(context.Context, *rand.Rand) error{
		"new-order":    d.NewOrder,
		"payment":      d.Payment,
		"order-status": d.OrderStatus,
		"delivery":     d.Delivery,
		"stock-level":  d.StockLevel,
	}
	for name, fn := range cases {
		fn := fn
		b.Run(name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if err := fn(context.Background(), rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemGovernor prices bounded-memory execution on the agg-heavy
// (Q1) and join-heavy (Q12) plans: ungoverned, governed with an unbounded
// budget (pure accounting overhead — Grow/Shrink on every operator batch),
// and governed with a starving 16KB per-query budget (every materializing
// operator takes its full spill path: grace join partitions, external sort
// runs, aggregate state spills, all through the simulated disk). The
// spilled-bytes metric is reported so BENCH_mem.json records how much I/O
// the budget bought. See BENCH_mem.json for measured numbers and reading.
func BenchmarkMemGovernor(b *testing.B) {
	e, _ := loadedEngine(b, core.ArchA)
	defer e.Close()
	qs := ch.Queries()
	modes := []struct {
		name   string
		budget int64
	}{
		{"unbounded", 0},
		{"accounted", 1 << 30},
		{"spill-16k", 16 << 10},
	}
	for _, qn := range []int{1, 12, 18} {
		for _, m := range modes {
			q := qs[qn]
			b.Run(fmt.Sprintf("Q%02d/%s", qn, m.name), func(b *testing.B) {
				var gov *exec.Governor
				if m.budget > 0 {
					gov = exec.NewGovernor(0, nil)
					gov.SetQueryLimit(m.budget)
					e.(core.MemGoverned).SetMemGovernor(gov)
					defer e.(core.MemGoverned).SetMemGovernor(nil)
				}
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					q(ch.Bind(context.Background(), e))
				}
				b.StopTimer()
				if gov != nil {
					b.ReportMetric(float64(gov.SpillBytes())/float64(b.N), "spillB/op")
					if gov.LiveSpillFiles() != 0 {
						b.Fatalf("%d spill files leaked", gov.LiveSpillFiles())
					}
				}
			})
		}
	}
}

// --- B3: micro-benchmarks ---

// BenchmarkMicroADAPT runs the ADAPT sweep.
func BenchmarkMicroADAPT(b *testing.B) {
	var pts []micro.ADAPTPoint
	for i := 0; i < b.N; i++ {
		pts = micro.RunADAPT(30_000, 16, []float64{0.0625, 1.0}, 1000)
	}
	for _, p := range pts {
		b.ReportMetric(float64(p.ScanTime.Microseconds()),
			fmt.Sprintf("%s@%.2f-scan-µs", p.Layout, p.Projectivity))
	}
}

// BenchmarkMicroHAP runs the HAP update-fraction sweep.
func BenchmarkMicroHAP(b *testing.B) {
	var pts []micro.HAPPoint
	for i := 0; i < b.N; i++ {
		pts = micro.RunHAP(3000, 8, 40, []float64{0.0, 1.0})
	}
	for _, p := range pts {
		b.ReportMetric(p.OpsPerSec, fmt.Sprintf("%s@%.1f-ops/s", p.Layout, p.UpdateFraction))
	}
}

// --- E1: isolation vs freshness ---

// BenchmarkTradeoff sweeps the synchronization period on architecture A.
func BenchmarkTradeoff(b *testing.B) {
	var pts []experiments.TradeoffPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Tradeoff(benchOpts(), []time.Duration{
			2 * time.Millisecond, 50 * time.Millisecond,
		})
	}
	for _, p := range pts {
		b.ReportMetric(p.TPS, fmt.Sprintf("tps@sync=%s", p.SyncInterval))
		b.ReportMetric(p.FreshLagMs, fmt.Sprintf("lag-ms@sync=%s", p.SyncInterval))
	}
}

// --- D1: distributed execution (internal/dist) ---

// loadedDist builds a coordinator over n arch-A shards holding 4
// warehouses of CH data.
func loadedDist(b *testing.B, n int) (core.Engine, ch.Scale) {
	b.Helper()
	engines := make([]core.Engine, n)
	for i := range engines {
		engines[i] = experiments.NewEngine(core.ArchA)
	}
	d, err := dist.New(4, engines...)
	if err != nil {
		b.Fatal(err)
	}
	s := ch.SmallScale(4)
	s.Customers = 60
	s.Orders = 60
	s.Items = 200
	if _, err := ch.NewGenerator(s).Load(d); err != nil {
		b.Fatal(err)
	}
	d.Sync()
	return d, s
}

// BenchmarkDistShards runs the same mixed workload against 1, 2, and 4
// shards behind the coordinator: the throughput-vs-shard-count headline
// for BENCH_dist.json. Cross-warehouse NewOrders/Payments pay two-phase
// commit; analytical queries scatter to every shard and merge.
func BenchmarkDistShards(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		n := n
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			e, s := loadedDist(b, n)
			defer e.Close()
			merge := obs.Default.Counter("htap_dist_merge_rows_total", nil)
			groups := obs.Default.Counter("htap_dist_partial_groups_total", nil)
			m0, g0 := merge.Value(), groups.Value()
			b.ResetTimer()
			var txns, queries int64
			for i := 0; i < b.N; i++ {
				res := htapbench.Run(htapbench.Config{
					Engine: e, Scale: s, TPWorkers: 2, APStreams: 1,
					Duration: 200 * time.Millisecond, QuerySet: []int{1, 6},
					SyncInterval: 50 * time.Millisecond, Seed: int64(i),
				})
				txns += res.Txns
				queries += res.Queries
			}
			el := b.Elapsed().Seconds()
			b.ReportMetric(float64(txns)/el, "txn/s")
			b.ReportMetric(float64(queries)/el, "query/s")
			if queries > 0 {
				// Rows the coordinator pulled off shard streams per query,
				// and the partial group states that replaced them on pushed
				// aggregations — the merge-volume story for BENCH_dist.json.
				b.ReportMetric(float64(merge.Value()-m0)/float64(queries), "merged-rows/query")
				b.ReportMetric(float64(groups.Value()-g0)/float64(queries), "partial-groups/query")
			}
		})
	}
}

// --- X1: §2.4 extensions ---

// BenchmarkExtensions measures the future-work features built on top of
// the survey's baselines: the decayed (learned-lite) column selector under
// workload shift, and the adaptive scheduler.
func BenchmarkExtensions(b *testing.B) {
	b.Run("accel-crossover", func(b *testing.B) {
		// Locate the CPU/GPU crossover row count; a shape the cost model
		// must keep stable.
		cpu, gpu := accel.CPU(), accel.GPU()
		var cross int
		for n := 0; n < b.N; n++ {
			cross = 0
			for rows := 1; rows <= 1_000_000; rows *= 2 {
				if gpu.KernelCost(rows, rows*16) < cpu.KernelCost(rows, rows*16) {
					cross = rows
					break
				}
			}
		}
		b.ReportMetric(float64(cross), "crossover-rows")
	})
	b.Run("adaptive-scheduler", func(b *testing.B) {
		var rows []experiments.RSRow
		for i := 0; i < b.N; i++ {
			rows = experiments.Table2RS(benchOpts())
		}
		for _, r := range rows {
			if r.Policy == "adaptive" {
				b.ReportMetric(r.TPS, "adaptive-txn/s")
				b.ReportMetric(r.FreshAvgTS, "adaptive-lag")
			}
		}
	})
}
