// Package htap is a single-module reproduction of "HTAP Databases: What is
// New and What is Next" (Li & Zhang, SIGMOD 2022): four hybrid
// transactional/analytical storage architectures built from shared
// substrates, the five HTAP technique families the survey catalogues, and
// the benchmarks it covers (CH-benCHmark, HTAPBench, ADAPT/HAP).
//
// The package is a facade over the internal packages. A typical session:
//
//	engine := htap.New(htap.ArchA, htap.CHSchemas())
//	gen := htap.NewCHGenerator(htap.CHSmallScale(2))
//	gen.Load(engine)
//
//	// OLTP: run TPC-C transactions.
//	driver := htap.NewCHDriver(engine, gen.Scale)
//	driver.RunOne(rng)
//
//	// OLAP: run a CH analytical query against the same engine.
//	rows := htap.CHQueries()[5](engine)
//
//	// Mixed benchmark with metrics.
//	res := htap.RunMixed(htap.MixedConfig{Engine: engine, Scale: gen.Scale,
//	    TPWorkers: 4, APStreams: 2, Duration: time.Second})
//	fmt.Println(res.TpmC, res.QphH)
//
// See DESIGN.md for the architecture inventory and EXPERIMENTS.md for the
// paper-versus-measured results.
package htap

import (
	"fmt"

	"htap/internal/ch"
	"htap/internal/core"
	"htap/internal/exec"
	"htap/internal/experiments"
	"htap/internal/htapbench"
	"htap/internal/types"
)

// Core engine surface.
type (
	// Engine is one HTAP storage architecture (paper Figure 1).
	Engine = core.Engine
	// Tx is an OLTP transaction against an Engine.
	Tx = core.Tx
	// Arch identifies one of the four storage architectures.
	Arch = core.Arch
	// Stats aggregates engine counters.
	Stats = core.Stats

	// ConfigA..ConfigD configure each architecture explicitly; New builds
	// them with defaults.
	ConfigA = core.ConfigA
	ConfigB = core.ConfigB
	ConfigC = core.ConfigC
	ConfigD = core.ConfigD
)

// The four storage architectures of the paper's Figure 1.
const (
	ArchA = core.ArchA // primary row store + in-memory column store
	ArchB = core.ArchB // distributed row store + column store replica
	ArchC = core.ArchC // disk row store + distributed column store
	ArchD = core.ArchD // primary column store + delta row store
)

// Data model.
type (
	// Datum is a scalar value.
	Datum = types.Datum
	// Row is a tuple in schema column order.
	Row = types.Row
	// Schema describes a table.
	Schema = types.Schema
	// Column describes one attribute.
	Column = types.Column
)

// Column types.
const (
	IntType    = types.Int
	FloatType  = types.Float
	StringType = types.String
)

// Datum constructors.
var (
	Int    = types.NewInt
	Float  = types.NewFloat
	String = types.NewString
)

// NewSchema builds a table schema; keyCol must name an INT column holding
// the packed primary key.
var NewSchema = types.NewSchema

// Query surface (relational-algebra builder).
type (
	// Plan is a composable analytical query.
	Plan = exec.Plan
	// Expr is a scalar expression.
	Expr = exec.Expr
	// Agg specifies one aggregate output.
	Agg = exec.Agg
	// NamedExpr names a projected expression.
	NamedExpr = exec.NamedExpr
	// SortKey orders plan output.
	SortKey = exec.SortKey
	// ScanPred is an advisory scan range used for pruning and access-path
	// costing.
	ScanPred = exec.ScanPred
)

// Expression constructors, re-exported from the execution engine.
var (
	Col       = exec.ColName
	ConstInt  = exec.ConstInt
	ConstStr  = exec.ConstStr
	Cmp       = exec.Cmp
	And       = exec.And
	Or        = exec.Or
	Not       = exec.Not
	Between   = exec.Between
	InInts    = exec.InInts
	HasPrefix = exec.HasPrefix
)

// Comparison operators.
const (
	EQ = exec.EQ
	NE = exec.NE
	LT = exec.LT
	LE = exec.LE
	GT = exec.GT
	GE = exec.GE
)

// Aggregate kinds.
const (
	Sum   = exec.Sum
	Count = exec.Count
	Avg   = exec.Avg
	Min   = exec.Min
	Max   = exec.Max
)

// New builds an architecture with sensible defaults over the given
// schemas. Use NewEngineA..NewEngineD with explicit configs for control
// over sync policy, cluster shape, budgets, or cost models.
func New(arch Arch, schemas []*Schema) Engine {
	switch arch {
	case ArchA:
		return core.NewEngineA(core.ConfigA{Schemas: schemas})
	case ArchB:
		return core.NewEngineB(core.ConfigB{Schemas: schemas})
	case ArchC:
		return core.NewEngineC(core.ConfigC{Schemas: schemas})
	case ArchD:
		return core.NewEngineD(core.ConfigD{Schemas: schemas})
	default:
		panic(fmt.Sprintf("htap: unknown architecture %v", arch))
	}
}

// Explicit engine constructors.
var (
	NewEngineA = core.NewEngineA
	NewEngineB = core.NewEngineB
	NewEngineC = core.NewEngineC
	NewEngineD = core.NewEngineD
)

// Exec runs fn in a transaction with automatic retries on transient
// concurrency conflicts.
var Exec = core.Exec

// CH-benCHmark surface.
type (
	// CHScale sizes a CH-benCHmark dataset.
	CHScale = ch.Scale
	// CHGenerator deterministically generates CH data.
	CHGenerator = ch.Generator
	// CHDriver executes the five TPC-C transactions.
	CHDriver = ch.Driver
	// CHQueryFunc is one of the 22 analytical queries.
	CHQueryFunc = ch.QueryFunc
)

// CH-benCHmark constructors and key-packing helpers.
var (
	CHSchemas        = ch.Schemas
	CHSmallScale     = ch.SmallScale
	CHDefaultScale   = ch.DefaultScale
	NewCHGenerator   = ch.NewGenerator
	NewCHDriver      = ch.NewDriver
	CHQueries        = ch.Queries
	CHCustomerKey    = ch.CustomerKey
	CHWarehouseKey   = ch.WarehouseKey
	CHDistrictKey    = ch.DistrictKey
	CHOrderKey       = ch.OrderKey
	CHNextHistoryKey = ch.NextHistoryKey
)

// Mixed-workload benchmarking (CH-benCHmark / HTAPBench execution rules).
type (
	// MixedConfig parameterizes a mixed OLTP+OLAP run.
	MixedConfig = htapbench.Config
	// MixedResult reports tpmC, QphH, latencies and freshness.
	MixedResult = htapbench.Result
)

// RunMixed executes a mixed workload and reports benchmark metrics.
var RunMixed = htapbench.Run

// Experiment harness (regenerates the paper's tables; see cmd/repro).
type (
	// ExperimentOpts sizes the reproduction experiments.
	ExperimentOpts = experiments.Opts
)

// Experiment entry points.
var (
	ExperimentDefaults = experiments.DefaultOpts
	RunTable1          = experiments.Table1
	RunFig1            = experiments.Fig1
	RunTradeoff        = experiments.Tradeoff
)
