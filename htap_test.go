package htap_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"htap"
	"htap/internal/ch"
)

// TestFacadeEndToEnd exercises the public API exactly as README shows it.
func TestFacadeEndToEnd(t *testing.T) {
	for _, arch := range []htap.Arch{htap.ArchA, htap.ArchD} {
		engine := htap.New(arch, htap.CHSchemas())
		scale := htap.CHSmallScale(1)
		gen := htap.NewCHGenerator(scale)
		if _, err := gen.Load(engine); err != nil {
			t.Fatal(err)
		}
		driver := htap.NewCHDriver(engine, scale)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 20; i++ {
			if err := driver.RunOne(context.Background(), rng); err != nil {
				t.Fatalf("%v: txn: %v", arch, err)
			}
		}
		rows := htap.CHQueries()[1](ch.Bind(context.Background(), engine))
		if len(rows) == 0 {
			t.Fatalf("%v: Q1 empty", arch)
		}
		res := htap.RunMixed(htap.MixedConfig{
			Engine: engine, Scale: scale, TPWorkers: 1, APStreams: 1,
			Duration: 100 * time.Millisecond, QuerySet: []int{6},
		})
		if res.Txns == 0 || res.Queries == 0 {
			t.Fatalf("%v: mixed run empty: %+v", arch, res)
		}
		engine.Close()
	}
}

// TestFacadeCustomSchema covers the bespoke-schema path of the facade.
func TestFacadeCustomSchema(t *testing.T) {
	s := htap.NewSchema("kv", 0,
		htap.Column{Name: "k", Type: htap.IntType},
		htap.Column{Name: "v", Type: htap.StringType},
	)
	e := htap.New(htap.ArchA, []*htap.Schema{s})
	defer e.Close()
	if err := htap.Exec(context.Background(), e, func(tx htap.Tx) error {
		return tx.Insert("kv", htap.Row{htap.Int(1), htap.String("x")})
	}); err != nil {
		t.Fatal(err)
	}
	got := e.Query(context.Background(), "kv", nil, nil).
		Filter(htap.Cmp(htap.EQ, htap.Col("k"), htap.ConstInt(1))).Run()
	if len(got) != 1 || got[0][1].Str() != "x" {
		t.Fatalf("query = %v", got)
	}
}
