#!/usr/bin/env bash
# metrics_lint.sh — every htap_* series registered in code must be
# documented in README.md's metric table.
#
# The README abbreviates families: rows may list a full name
# (`htap_exec_spills_total`), a shared-prefix tail (`_shed_total` in the
# htap_server row), or a wildcard (`htap_disk_*`). A metric passes if any
# of the three matches. Test files are excluded — test-only series are
# not part of the documented surface.
set -euo pipefail
cd "$(dirname "$0")/.."

readme=README.md
fail=0

# All htap_* string literals in non-test Go sources.
metrics=$(grep -rhoE '"htap_[a-z0-9_]+"' --include='*.go' \
	--exclude='*_test.go' --exclude-dir='.bench-base' cmd internal examples 2>/dev/null |
	tr -d '"' | sort -u)

for m in $metrics; do
	# 1. Full name appears.
	if grep -q "$m" "$readme"; then
		continue
	fi
	# 2. Abbreviated tail: rows like `htap_server_requests_total`,
	# `_shed_total` document siblings by suffix. Accept the metric if any
	# underscore-boundary suffix appears backticked.
	found=0
	rest=${m#htap}
	while [ -n "$rest" ]; do
		if grep -qF "\`$rest\`" "$readme"; then
			found=1
			break
		fi
		next=${rest#_}
		next=${next#"${next%%_*}"}
		[ "$next" = "$rest" ] && break
		rest=$next
	done
	if [ "$found" -eq 1 ]; then
		continue
	fi
	# 3. Wildcard family row: htap_<subsystem>_*.
	prefix=$(printf '%s' "$m" | grep -oE '^htap_[a-z0-9]+')
	if grep -qF "\`${prefix}_*\`" "$readme"; then
		continue
	fi
	echo "UNDOCUMENTED: $m (no row in $readme)"
	fail=1
done

if [ "$fail" -ne 0 ]; then
	echo "metrics lint failed: add the series above to the README metric table" >&2
	exit 1
fi
echo "metrics lint: all registered htap_* series documented"
